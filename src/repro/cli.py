"""Command-line interface: regenerate the paper's results.

::

    repro figure2        latency vs. active senders (Figure 2)
    repro table2         the property x meta-property matrix (Table 2)
    repro overhead       switching overhead near the crossover (section 7)
    repro oscillation    aggressive vs. hysteresis oracle (section 7)
    repro preservation   per-property preservation under live switching
    repro chaos          seeded fault-injection run with oracle checks
    repro scenario       scored scenarios from the catalog (drift + oracle)
    repro run            one live switch on a chosen runtime (sim or asyncio)
    repro fleet          many switching groups multiplexed in one process
    repro top            live terminal dashboard over fleet telemetry
    repro metrics        pretty-print a metrics snapshot JSON

Every command prints the paper's claim next to the measured result.

``run`` and ``chaos`` accept ``--trace out.trace.json`` (Chrome
trace-event file, loadable in Perfetto / ``chrome://tracing``),
``--events out.jsonl`` (raw event log) and ``--metrics metrics.json``
(counters/gauges/histogram snapshot).  Without these flags the
instrumentation bus stays disabled and the runs are byte-identical to
the uninstrumented seed.

``fleet --telemetry`` grows the live telemetry plane (windowed
per-group aggregation, SLO engine, flight recorder); ``--expo-port``
additionally serves ``/metrics`` + ``/snapshot`` over localhost HTTP on
the asyncio runtime, and ``repro top`` watches either a live endpoint
or a ``--telemetry-json`` payload.  ``chaos --blackbox`` rides the
flight recorder on a chaos run and dumps the black box as JSONL.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ._version import __version__

__all__ = ["main"]


def _make_bus(args: argparse.Namespace):
    """An enabled Bus when any instrumentation flag was given, else None."""
    if not (args.trace or args.metrics or args.events):
        return None
    from .obs.bus import Bus

    return Bus(enabled=True)


def _export_bus(bus, args: argparse.Namespace, **header) -> None:
    """Write whichever artifacts the flags requested; prints the paths."""
    if bus is None:
        return
    from .obs.export import write_chrome_trace, write_jsonl, write_metrics

    if args.trace:
        records = write_chrome_trace(args.trace, bus.events)
        print(f"trace:    {args.trace} ({records} records, Perfetto-loadable)")
    if args.events:
        lines = write_jsonl(args.events, bus.events)
        print(f"events:   {args.events} ({lines} events)")
    if args.metrics:
        write_metrics(args.metrics, bus.metrics, **header)
        print(f"metrics:  {args.metrics}")


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a Chrome trace-event JSON (open in ui.perfetto.dev)",
    )
    parser.add_argument(
        "--events", metavar="FILE", help="write the raw event log as JSONL"
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="write the metrics snapshot (counters/gauges/histograms) JSON",
    )


def _cmd_figure2(args: argparse.Namespace) -> int:
    from .workloads.experiment import (
        Figure2Config,
        find_crossover,
        run_figure2_sweep,
    )

    config = Figure2Config(duration=args.duration, seed=args.seed)
    protocols = ("sequencer", "token", "hybrid") if args.hybrid else (
        "sequencer",
        "token",
    )
    counts = list(range(1, config.group_size + 1))
    print("Figure 2: message latency vs. number of active senders")
    print(f"(group of {config.group_size}, {config.rate:.0f} msgs/sec each, "
          f"{config.body_size} B payloads, 10 Mbit Ethernet model)\n")
    if args.workers != 1:
        from .workloads.parallel import default_workers, run_figure2_sweep_parallel

        results = run_figure2_sweep_parallel(
            protocols, counts, config,
            workers=default_workers(args.workers or None),
        )
    else:
        results = run_figure2_sweep(protocols, counts, config)
    header = "senders  " + "".join(f"{p:>12}" for p in protocols)
    print(header)
    print("-" * len(header))
    for index, k in enumerate(counts):
        row = f"{k:<9}"
        for protocol in protocols:
            row += f"{results[protocol][index].mean_ms:>10.2f}ms"
        print(row)
    crossover = find_crossover(results["sequencer"], results["token"])
    print(f"\nmeasured crossover: between {crossover[0]} and {crossover[1]} "
          f"active senders" if crossover else "\nno crossover found")
    print("paper:              between 5 and 6 active senders")
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from .traces.meta import ALL_META_PROPERTIES
    from .traces.report import PAPER_TABLE_2, matrix_agreement, render_matrix
    from .traces.universes import table2_universes
    from .traces.verify import compute_matrix

    depth = "thorough" if args.thorough else "fast"
    print(f"Computing Table 2 by bounded exhaustive model checking "
          f"(depth={depth})...\n")
    universes = table2_universes(depth)
    cells = compute_matrix(universes, list(ALL_META_PROPERTIES), PAPER_TABLE_2)
    print(render_matrix(cells))
    agreeing, pinned = matrix_agreement(cells)
    print(f"\nagreement with the paper's pinned cells: {agreeing}/{pinned}")
    return 0 if agreeing == pinned else 1


def _cmd_overhead(args: argparse.Namespace) -> int:
    from .workloads.experiment import (
        Figure2Config,
        run_switch_overhead_experiment,
    )

    config = Figure2Config(seed=args.seed)
    print("Section 7: switching overhead near the crossover\n")
    for senders, direction in (
        (5, "sequencer->token"),
        (6, "sequencer->token"),
        (6, "token->sequencer"),
    ):
        result = run_switch_overhead_experiment(senders, direction, config)
        print(
            f"{direction:<22} senders={senders}: switch took "
            f"{result.switch_duration_ms:6.1f}ms end to end; perceived "
            f"hiccup {result.max_hiccup_ms:5.1f}ms "
            f"(baseline {result.baseline_hiccup_ms:5.1f}ms); "
            f"senders blocked: {result.sends_blocked}"
        )
    print("\npaper: overhead of switching near the cross-over point is about"
          " 31 msecs;")
    print("       processes are never blocked from sending, so the perceived")
    print("       hiccup is often less than that.")
    return 0


def _cmd_oscillation(args: argparse.Namespace) -> int:
    from .workloads.experiment import Figure2Config, run_oscillation_experiment

    config = Figure2Config(seed=args.seed)
    print("Section 7: aggressive switching oscillates; hysteresis fixes it\n")
    for policy in ("aggressive", "hysteresis"):
        result = run_oscillation_experiment(policy, config)
        print(
            f"{policy:<11} switch requests={result.switch_requests:<3} "
            f"completed={result.switches_completed:<3} "
            f"mean latency={result.mean_latency_ms:.2f}ms"
        )
    print("\npaper: 'If switching too aggressively, the resulting protocol"
          " starts oscillating.'")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from .traces.meta import ALL_META_PROPERTIES, Composable
    from .traces.render import render_trace
    from .traces.universes import table2_universes
    from .traces.verify import (
        check_composability,
        check_preservation,
        shrink_counterexample,
    )

    universes = {prop.name: (prop, traces) for prop, traces in table2_universes("fast")}
    if args.property is None:
        print("auditable properties:")
        for name in universes:
            print(f"  {name}")
        print("\nusage: repro audit --property 'Total Order'")
        return 0
    if args.property not in universes:
        print(f"unknown property {args.property!r}; known: {sorted(universes)}")
        return 1
    prop, traces = universes[args.property]
    print(f"meta-property audit of {prop.name!r} "
          f"(exhaustive universe of {len(traces)} traces):\n")
    failing = []
    for meta in ALL_META_PROPERTIES:
        if isinstance(meta, Composable):
            verdict = check_composability(prop, traces, max_pairs=500_000)
        else:
            verdict = check_preservation(prop, meta, traces)
        mark = "preserved" if verdict.preserved else "REFUTED"
        print(f"  {meta.name:<14} {mark}")
        if verdict.counterexample is not None:
            ce = verdict.counterexample
            if not isinstance(meta, Composable):
                ce = shrink_counterexample(prop, meta, ce)
            print("      below (holds):")
            for line in (render_trace(ce.below, legend=False) or "(empty)").splitlines():
                print(f"        {line}")
            print("      above (fails):")
            for line in (render_trace(ce.above, legend=False) or "(empty)").splitlines():
                print(f"        {line}")
            failing.append(meta.name)
    print()
    if failing:
        print(f"{prop.name} fails {', '.join(failing)}: the switching")
        print("protocol does not guarantee it in general.")
    else:
        print(f"{prop.name} satisfies all six meta-properties: the paper's")
        print("theorem (section 6.3) says the switching protocol preserves it.")
    return 0


def _cmd_preservation(args: argparse.Namespace) -> int:
    from .workloads.preservation import run_preservation_suite

    print("Experiment S6: property preservation under live switching\n")
    outcomes = run_preservation_suite()
    mismatches = 0
    for outcome in outcomes:
        print(outcome.row())
        if outcome.explanation and not outcome.expected_holds:
            print(f"    violation: {outcome.explanation}")
        if not outcome.as_expected:
            mismatches += 1
    print(f"\n{len(outcomes) - mismatches}/{len(outcomes)} scenarios match "
          f"the paper's claims")
    return 0 if mismatches == 0 else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    import math

    from .testing.chaos import ChaosConfig, CrashWindow, run_chaos

    crashes = []
    for spec in args.crash or []:
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            print(f"bad --crash spec {spec!r}; want RANK:AT[:UNTIL]")
            return 2
        crashes.append(
            CrashWindow(
                int(parts[0]),
                float(parts[1]),
                float(parts[2]) if len(parts) == 3 else math.inf,
            )
        )
    from .errors import NetworkError, SimulationError

    try:
        config = ChaosConfig(
            members=args.members,
            seed=args.seed,
            duration=args.duration,
            settle=args.settle,
            cast_rate=args.cast_rate,
            switch_every=args.switch_every,
            control_loss=args.control_loss,
            control_dup=args.control_dup,
            control_jitter=args.control_jitter,
            crashes=crashes,
        )
        print("Chaos run: fault-tolerant token SP under a seeded storm\n")
        bus = _make_bus(args)
        recorder = None
        if args.blackbox:
            from .obs.bus import Bus
            from .obs.telemetry import FlightRecorder

            if bus is None:
                # Recorder-only instrumentation: stream events to the
                # ring without retaining any (max_events=0).
                bus = Bus(enabled=True, max_events=0)
            recorder = FlightRecorder()
            recorder.attach(bus)
        result = run_chaos(config, bus=bus)
    except (SimulationError, NetworkError) as exc:
        print(f"bad chaos configuration: {exc}")
        return 2
    print(result.summary())
    _export_bus(bus, args, command="chaos", seed=args.seed, runtime="sim")
    if recorder is not None:
        lines = recorder.write_jsonl(args.blackbox)
        print(
            f"blackbox: {args.blackbox} ({len(recorder.captures)} captures, "
            f"{lines} lines)"
        )
    return 0 if result.ok else 1


def _cmd_scenario(args: argparse.Namespace) -> int:
    import json

    from .errors import ReproError, ScenarioError
    from .scenarios import load_catalog
    from .scenarios.runner import run_scenario_cell, scenario_cells

    try:
        catalog = load_catalog(args.catalog)
    except ScenarioError as exc:
        print(f"bad scenario catalog: {exc}")
        return 2

    if args.list:
        width = max(len(name) for name in catalog)
        for name, spec in catalog.items():
            runtimes = ",".join(spec.runtimes)
            print(f"{name:<{width}}  [{runtimes}]  {spec.summary}")
        return 0

    if args.all:
        names = [
            name
            for name, spec in catalog.items()
            if args.runtime in spec.runtimes
        ]
        if not names:
            print(f"no catalog scenario declares the {args.runtime!r} runtime")
            return 2
    elif args.name:
        if args.name not in catalog:
            print(
                f"unknown scenario {args.name!r}; known: {sorted(catalog)} "
                f"(see also: repro scenario --list)"
            )
            return 2
        if args.runtime not in catalog[args.name].runtimes:
            print(
                f"scenario {args.name!r} declares runtimes "
                f"{list(catalog[args.name].runtimes)}, not {args.runtime!r}"
            )
            return 2
        names = [args.name]
    else:
        print("pick a scenario by name, or pass --all / --list")
        return 2

    workers = args.workers
    if workers != 1 and args.runtime != "sim":
        print("parallel sweeps bind real UDP ports; forcing --workers 1")
        workers = 1
    print(
        f"Scenario sweep: {len(names)} scenario(s) on the "
        f"{args.runtime!r} runtime\n"
    )
    try:
        from .workloads.parallel import default_workers, run_cells

        verdicts = run_cells(
            scenario_cells(names, args.runtime, args.catalog),
            run_scenario_cell,
            workers=default_workers(workers or None) if workers != 1 else 1,
        )
    except ReproError as exc:
        print(f"scenario run failed: {exc}")
        return 2
    for verdict in verdicts:
        print(verdict.summary())
        print()
    failed = [v.scenario for v in verdicts if not v.ok]
    print(f"{len(verdicts) - len(failed)}/{len(verdicts)} scenarios passed")
    if failed:
        print(f"failing: {failed}")

    if args.json:
        payload = {
            "schema_version": 1,
            "suite": "scenarios",
            "runtime": args.runtime,
            "scenarios": {v.scenario: v.to_dict() for v in verdicts},
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"verdicts: {args.json}")
    return 1 if failed else 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .errors import ReproError
    from .workloads.switchrun import SwitchRunConfig, run_switch_demo

    try:
        config = SwitchRunConfig(
            runtime=args.runtime,
            members=args.members,
            duration=args.duration,
            rate=args.rate,
            seed=args.seed,
            switch_at=args.switch_at,
            base_port=args.base_port,
            max_batch=args.batch,
            linger=args.linger,
        )
        print(
            f"Live sequencer->tokenring switch on the {args.runtime!r} "
            f"runtime\n"
        )
        bus = _make_bus(args)
        result = run_switch_demo(config, bus=bus)
    except ReproError as exc:
        print(f"bad run configuration: {exc}")
        return 2
    print(result.summary())
    _export_bus(
        bus, args, command="run", seed=args.seed, runtime=args.runtime
    )
    return 0 if result.ok else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from .errors import ReproError
    from .fleet import FleetConfig, run_fleet, run_fleet_sharded

    try:
        config = FleetConfig(
            runtime=args.runtime,
            shards=args.shards,
            groups=args.groups,
            members=args.members,
            nodes=args.nodes,
            clients=args.clients,
            client_rate=args.client_rate,
            hot_fraction=args.hot_fraction,
            hot_multiplier=args.hot_multiplier,
            duration=args.duration,
            seed=args.seed,
            token_interval=args.token_interval,
            high_threshold=args.high_threshold,
            oracle_poll=args.oracle_poll,
            settle=args.settle,
            base_port=args.base_port,
            telemetry=(
                args.telemetry
                or bool(args.telemetry_json)
                or bool(args.scrape_out)
                or args.expo_port is not None
            ),
            telemetry_window=args.telemetry_window,
            telemetry_history=args.telemetry_history,
            expo_port=args.expo_port,
            slo_p99_ms=args.slo_p99_ms,
            slo_switch_s=args.slo_switch_s,
            slo_ratio=args.slo_ratio,
        )
    except ReproError as exc:
        print(f"bad fleet configuration: {exc}")
        return 2
    sharded = f" across {config.shards} shards" if config.shards else ""
    print(
        f"Fleet sweep: {config.groups} groups x {config.members} members "
        f"over {config.nodes} nodes on the {config.runtime!r} "
        f"runtime{sharded}\n"
    )
    try:
        result = (
            run_fleet_sharded(config) if config.shards else run_fleet(config)
        )
    except ReproError as exc:
        print(f"fleet run failed: {exc}")
        return 2
    print(result.summary())
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"result: {args.json}")
    if args.telemetry_json:
        if result.telemetry is None:
            print("no telemetry collected; nothing to write")
            return 2
        with open(args.telemetry_json, "w") as handle:
            json.dump(result.telemetry, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"telemetry: {args.telemetry_json}")
    if args.scrape_out:
        scraped = (result.telemetry or {}).get("scrape")
        if scraped is None:
            print(
                "no scrape captured; --scrape-out needs --expo-port "
                "(asyncio runtime)"
            )
            return 2
        with open(args.scrape_out, "w") as handle:
            json.dump(scraped, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"scrape:   {args.scrape_out}")
    return 0 if result.ok else 1


def _cmd_top(args: argparse.Namespace) -> int:
    from .obs.telemetry.top import run_top

    return run_top(
        args.source,
        interval=args.interval,
        limit=args.limit,
        once=args.once,
        as_json=args.json,
    )


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    try:
        with open(args.file) as handle:
            snapshot = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read metrics file {args.file!r}: {exc}")
        return 2

    header = {
        k: v
        for k, v in snapshot.items()
        if k not in ("counters", "gauges", "histograms")
    }
    if header:
        print("  ".join(f"{k}={v}" for k, v in sorted(header.items())))
        print()

    counters = snapshot.get("counters", {})
    if counters:
        print("counters:")
        width = max(len(name) for name in counters)
        for name, value in sorted(counters.items()):
            print(f"  {name:<{width}}  {value}")
        print()

    gauges = snapshot.get("gauges", {})
    if gauges:
        print("gauges (latest value @ time):")
        width = max(len(name) for name in gauges)
        for name, entry in sorted(gauges.items()):
            print(
                f"  {name:<{width}}  {entry['value']:g} "
                f"@ t={entry['time']:.6f}"
            )
        print()

    histograms = snapshot.get("histograms", {})
    if histograms:
        print("histograms:")
        width = max(len(name) for name in histograms)
        head = (
            f"  {'name':<{width}}  {'count':>7} {'mean':>12} {'p50':>12} "
            f"{'p90':>12} {'p99':>12} {'max':>12}"
        )
        print(head)
        print("  " + "-" * (len(head) - 2))
        for name, h in sorted(histograms.items()):
            if not h.get("count"):
                print(f"  {name:<{width}}  {0:>7}")
                continue

            def cell(key: str) -> str:
                # Single-observation histograms carry no quantiles.
                value = h.get(key)
                return f"{value:>12.6g}" if value is not None else f"{'-':>12}"

            print(
                f"  {name:<{width}}  {h['count']:>7} {cell('mean')} "
                f"{cell('p50')} {cell('p90')} {cell('p99')} {cell('max')}"
            )

    if not (counters or gauges or histograms):
        print("(no metrics recorded)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Protocol Switching: Exploiting "
        "Meta-Properties' (WARGC/ICDCS 2001)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figure2", help="latency vs. active senders")
    p_fig.add_argument("--duration", type=float, default=4.0)
    p_fig.add_argument("--seed", type=int, default=42)
    p_fig.add_argument(
        "--workers", type=int, default=1,
        help="fan sweep points across N processes (0 = one per core); "
        "results are identical for any worker count",
    )
    p_fig.add_argument(
        "--hybrid", action="store_true", help="include the adaptive hybrid"
    )
    p_fig.set_defaults(func=_cmd_figure2)

    p_tab = sub.add_parser("table2", help="meta-property matrix")
    p_tab.add_argument(
        "--thorough", action="store_true", help="enumerate one event deeper"
    )
    p_tab.set_defaults(func=_cmd_table2)

    p_ovh = sub.add_parser("overhead", help="switching overhead")
    p_ovh.add_argument("--seed", type=int, default=42)
    p_ovh.set_defaults(func=_cmd_overhead)

    p_osc = sub.add_parser("oscillation", help="oracle policy comparison")
    p_osc.add_argument("--seed", type=int, default=42)
    p_osc.set_defaults(func=_cmd_oscillation)

    p_pre = sub.add_parser("preservation", help="live preservation suite")
    p_pre.set_defaults(func=_cmd_preservation)

    p_chaos = sub.add_parser(
        "chaos", help="seeded fault-injection run with oracle checks"
    )
    p_chaos.add_argument("--members", type=int, default=4)
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--duration", type=float, default=6.0)
    p_chaos.add_argument("--cast-rate", type=float, default=120.0)
    p_chaos.add_argument("--switch-every", type=float, default=0.7)
    p_chaos.add_argument("--control-loss", type=float, default=0.0)
    p_chaos.add_argument("--control-dup", type=float, default=0.0)
    p_chaos.add_argument("--control-jitter", type=float, default=0.0)
    p_chaos.add_argument(
        "--crash",
        action="append",
        metavar="RANK:AT[:UNTIL]",
        help="crash RANK at time AT (recovering at UNTIL); repeatable",
    )
    p_chaos.add_argument(
        "--settle",
        type=int,
        default=20,
        help="convergence grace windows after the workload stops "
        "(0 = none: any in-flight switch at the horizon is a violation)",
    )
    p_chaos.add_argument(
        "--blackbox",
        metavar="FILE",
        help="ride the flight recorder on the run and write the black "
        "box (captures frozen on switch aborts) as JSONL",
    )
    _add_obs_flags(p_chaos)
    p_chaos.set_defaults(func=_cmd_chaos)

    p_scn = sub.add_parser(
        "scenario",
        help="run scored scenarios from the catalog (chaos/oracle testbed)",
    )
    p_scn.add_argument(
        "name", nargs="?", default=None, help="catalog entry to run"
    )
    p_scn.add_argument(
        "--all", action="store_true", help="run every catalog scenario"
    )
    p_scn.add_argument(
        "--list", action="store_true", help="list the catalog and exit"
    )
    p_scn.add_argument(
        "--runtime",
        choices=("sim", "asyncio"),
        default="sim",
        help="sim = deterministic virtual time; asyncio = real localhost UDP",
    )
    p_scn.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan the sweep across N processes (0 = one per core); "
        "verdicts are identical for any worker count (sim only)",
    )
    p_scn.add_argument(
        "--json", metavar="FILE", help="write all verdicts as one JSON file"
    )
    p_scn.add_argument(
        "--catalog",
        metavar="DIR",
        default=None,
        help="load scenarios from DIR instead of the built-in catalog",
    )
    p_scn.set_defaults(func=_cmd_scenario)

    p_run = sub.add_parser(
        "run", help="one live switch on a chosen runtime (sim or asyncio)"
    )
    p_run.add_argument(
        "--runtime",
        choices=("sim", "asyncio"),
        default="sim",
        help="sim = deterministic virtual time; asyncio = real localhost UDP",
    )
    p_run.add_argument("--members", type=int, default=4)
    p_run.add_argument("--duration", type=float, default=3.0)
    p_run.add_argument("--rate", type=float, default=50.0)
    p_run.add_argument("--seed", type=int, default=42)
    p_run.add_argument("--switch-at", type=float, default=1.5)
    p_run.add_argument(
        "--base-port",
        type=int,
        default=47310,
        help="first UDP port (asyncio runtime only)",
    )
    p_run.add_argument(
        "--batch",
        type=int,
        default=1,
        help="casts coalesced per wire frame (1 disables batching)",
    )
    p_run.add_argument(
        "--linger",
        type=float,
        default=0.0,
        help="seconds an incomplete batch waits before flushing",
    )
    _add_obs_flags(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_fleet = sub.add_parser(
        "fleet",
        help="many switching groups multiplexed in one process",
        description="Drive a fleet of switching groups over shared "
        "per-node ports; the FleetOracle escalates hot groups from "
        "sequencer to token ring mid-run. Defaults reproduce the "
        "headline 1000-group / 100k-client sim sweep.",
    )
    p_fleet.add_argument(
        "--runtime",
        choices=("sim", "asyncio"),
        default="sim",
        help="sim = deterministic virtual time; asyncio = real localhost UDP",
    )
    p_fleet.add_argument("--groups", type=int, default=1000)
    p_fleet.add_argument("--members", type=int, default=3)
    p_fleet.add_argument("--nodes", type=int, default=48)
    p_fleet.add_argument(
        "--clients",
        type=int,
        default=100_000,
        help="simulated clients, folded into compound-rate Poisson senders",
    )
    p_fleet.add_argument("--client-rate", type=float, default=0.02)
    p_fleet.add_argument("--hot-fraction", type=float, default=0.05)
    p_fleet.add_argument("--hot-multiplier", type=float, default=50.0)
    p_fleet.add_argument("--duration", type=float, default=10.0)
    p_fleet.add_argument("--seed", type=int, default=42)
    p_fleet.add_argument("--token-interval", type=float, default=0.25)
    p_fleet.add_argument(
        "--high-threshold",
        type=float,
        default=50.0,
        help="per-group delivered-rate above which the oracle escalates",
    )
    p_fleet.add_argument("--oracle-poll", type=float, default=0.5)
    p_fleet.add_argument("--settle", type=float, default=2.0)
    p_fleet.add_argument(
        "--shards",
        type=int,
        default=0,
        help="partition the fleet across this many worker processes by "
        "group-id hash (sim runtime only; 0 = in-process)",
    )
    p_fleet.add_argument(
        "--base-port",
        type=int,
        default=47310,
        help="first UDP port (asyncio runtime only)",
    )
    p_fleet.add_argument(
        "--json", metavar="FILE", help="write the full result as JSON"
    )
    p_fleet.add_argument(
        "--telemetry",
        action="store_true",
        help="grow the live telemetry plane (windowed per-group "
        "aggregation, SLO engine, flight recorder); off by default",
    )
    p_fleet.add_argument(
        "--telemetry-window",
        type=float,
        default=1.0,
        help="aggregation window seconds",
    )
    p_fleet.add_argument(
        "--telemetry-history",
        type=int,
        default=60,
        help="rolled windows retained per group",
    )
    p_fleet.add_argument(
        "--telemetry-json",
        metavar="FILE",
        help="write the final telemetry payload (snapshot + Prometheus "
        "text + escalations) as JSON; implies --telemetry",
    )
    p_fleet.add_argument(
        "--expo-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve /metrics + /snapshot over localhost HTTP "
        "(asyncio runtime only; 0 = kernel-picked); implies --telemetry",
    )
    p_fleet.add_argument(
        "--scrape-out",
        metavar="FILE",
        help="self-scrape the live endpoint at the end of the run and "
        "write the scraped payload as JSON (needs --expo-port)",
    )
    p_fleet.add_argument(
        "--slo-p99-ms",
        type=float,
        default=None,
        help="SLO: delivery-latency p99 ceiling per window (ms)",
    )
    p_fleet.add_argument(
        "--slo-switch-s",
        type=float,
        default=None,
        help="SLO: time-to-switch ceiling (seconds)",
    )
    p_fleet.add_argument(
        "--slo-ratio",
        type=float,
        default=None,
        help="SLO: delivery-ratio floor (delivered / (casts x members))",
    )
    p_fleet.set_defaults(func=_cmd_fleet)

    p_top = sub.add_parser(
        "top",
        help="live terminal dashboard over fleet telemetry",
        description="Watch a fleet: point at a live exposition endpoint "
        "(http://host:port from fleet --expo-port) or a telemetry "
        "payload file (fleet --telemetry-json). Several sources — one "
        "per shard — merge into a single fleet view. Redraws every "
        "--interval seconds; --once renders a single frame, --once "
        "--json prints the raw payload for scripts.",
    )
    p_top.add_argument(
        "source",
        nargs="+",
        help="http://host:port of a live endpoint, or a telemetry JSON "
        "file; repeat for per-shard sources to watch the merged fleet",
    )
    p_top.add_argument("--interval", type=float, default=2.0)
    p_top.add_argument(
        "--limit", type=int, default=15, help="groups shown (hottest first)"
    )
    p_top.add_argument(
        "--once", action="store_true", help="render one frame and exit"
    )
    p_top.add_argument(
        "--json",
        action="store_true",
        help="with --once: print the raw payload instead of the dashboard",
    )
    p_top.set_defaults(func=_cmd_top)

    p_met = sub.add_parser(
        "metrics", help="pretty-print a metrics snapshot JSON"
    )
    p_met.add_argument("file", help="metrics JSON written by --metrics")
    p_met.set_defaults(func=_cmd_metrics)

    p_audit = sub.add_parser(
        "audit", help="audit a property against the six meta-properties"
    )
    p_audit.add_argument(
        "--property", default=None, help='e.g. "Total Order" (omit to list)'
    )
    p_audit.set_defaults(func=_cmd_audit)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
