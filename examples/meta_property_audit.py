#!/usr/bin/env python3
"""Auditing a NEW property with the meta-property calculus (§5–§6).

The paper's deepest contribution is a *recipe*: to know whether your
protocol's guarantee survives switching, check it against the six
meta-properties.  This example defines a property the paper never
mentions — "Self Echo: a process delivers its own messages" — and runs
the recipe mechanically:

1. formalize the property as a trace predicate,
2. check all six meta-properties by bounded exhaustive model checking,
3. read off the verdict (and the counterexample, if any).

Self Echo turns out to fail Safety (like Reliability, a delivery can be
owed at the cut) — so the calculus predicts SP preserves it only in
quiescent states, and prints the 2-event counterexample that says why.

Run:  python examples/meta_property_audit.py
"""

from typing import Optional

from repro.stack.message import Message
from repro.traces import (
    ALL_META_PROPERTIES,
    Composable,
    Property,
    Trace,
    check_composability,
    check_preservation,
    enumerate_traces,
    render_trace,
)


class SelfEcho(Property):
    """Every process that sends a message eventually delivers it itself.

    (Loosely: loopback delivery — what the paper's group-cast protocols
    all provide, and what the SP's drain logic silently relies on.)
    """

    name = "Self Echo"

    def explain(self, trace: Trace) -> Optional[str]:
        own_delivered = set()
        for event in trace.delivers():
            if event.process == event.msg.sender:
                own_delivered.add(event.mid)
        for event in trace.sends():
            if event.mid not in own_delivered:
                return (
                    f"process {event.msg.sender} never delivered its own "
                    f"message {event.mid}"
                )
        return None


def main() -> None:
    prop = SelfEcho()

    # A small universe: 2 messages from 2 senders, 2 processes,
    # every valid trace up to 5 events.
    messages = [
        Message(sender=0, mid=(0, 0), body="a", body_size=1),
        Message(sender=1, mid=(1, 0), body="b", body_size=1),
    ]
    universe = list(enumerate_traces(messages, [0, 1], 5))
    print(f"universe: {len(universe)} traces (exhaustive to 5 events)")
    print()
    print(f"meta-property audit of {prop.name!r}:")
    print()

    verdicts = {}
    for meta in ALL_META_PROPERTIES:
        if isinstance(meta, Composable):
            verdict = check_composability(prop, universe)
        else:
            verdict = check_preservation(prop, meta, universe)
        verdicts[meta.name] = verdict
        mark = "yes" if verdict.preserved else "NO "
        print(f"  {meta.name:<14} {mark}", end="")
        if verdict.counterexample:
            ce = verdict.counterexample
            print(f"   e.g. {ce.below!r}  --{meta.name}-->  {ce.above!r}")
        else:
            print()

    # Space-time view of the first counterexample found.
    for meta_name, verdict in verdicts.items():
        if verdict.counterexample:
            ce = verdict.counterexample
            print()
            print(f"counterexample for {meta_name}, below (property holds):")
            print(render_trace(ce.below, legend=False) or "  (empty trace)")
            print("above (property fails):")
            print(render_trace(ce.above, legend=False) or "  (empty trace)")
            break

    print()
    failing = [name for name, v in verdicts.items() if not v.preserved]
    if failing:
        print(f"verdict: {prop.name} fails {', '.join(failing)} -> the")
        print("switching protocol does NOT guarantee it in general")
        print("(like Reliability, it can only be owed at a cut; a switch")
        print("that lands mid-flight leaves the echo outstanding).")
    else:
        print(f"verdict: {prop.name} satisfies all six meta-properties ->")
        print("preserved by the switching protocol.")

    assert not verdicts["Safety"].preserved
    assert verdicts["Asynchrony"].preserved
    assert verdicts["Memoryless"].preserved


if __name__ == "__main__":
    main()
