#!/usr/bin/env python3
"""Run-time security escalation (§1, third use case).

"System managers will be able to increase security at run-time, for
example when an intrusion detection system notices unusual behavior, or
when it gets close to April 1st."

A group chats in the clear on a shared Ethernet segment.  An
eavesdropper NIC in promiscuous mode reads everything — until the
intrusion detector fires and the group switches, live, to a stack with
MAC authentication and body encryption.  The eavesdropper goes blind and
forged injections stop getting through, with no restart and no lost
messages.

Run:  python examples/security_escalation.py
"""

from repro import ProtocolSpec, Simulator, build_switch_group
from repro.core import AdaptiveController, ManualOracle
from repro.net import EthernetNetwork, EthernetParams
from repro.protocols import (
    Ciphertext,
    ConfidentialityLayer,
    GroupKey,
    IntegrityLayer,
)
from repro.sim import RandomStreams
from repro.stack import Group, Message

GROUP_SIZE = 4
INTRUSION_DETECTED_AT = 0.5


def main() -> None:
    sim = Simulator()
    streams = RandomStreams(13)
    network = EthernetNetwork(sim, GROUP_SIZE, EthernetParams(), rng=streams)
    group = Group.of_size(GROUP_SIZE)
    key = GroupKey("emergency-rekey-2001-04-01")

    protocols = [
        ProtocolSpec("plain", lambda rank: []),
        ProtocolSpec(
            "secure",
            lambda rank: [IntegrityLayer(key), ConfidentialityLayer(key)],
        ),
    ]
    stacks = build_switch_group(sim, network, group, protocols, initial="plain")

    deliveries = {rank: [] for rank in group}
    for rank, stack in stacks.items():
        stack.on_deliver(
            lambda msg, rank=rank: deliveries[rank].append(msg.body)
        )

    # The eavesdropper: a promiscuous NIC on the same segment.
    overheard = []

    def sniff(packet) -> None:
        payload = packet.payload
        if isinstance(payload, Message) and payload.body is not None:
            if isinstance(payload.body, Ciphertext):
                return  # sealed: nothing learned
            overheard.append((sim.now, payload.body))

    network.attach_sniffer(sniff)

    # The intrusion detector: a manual oracle the operator can fire.
    oracle = ManualOracle()
    controller = AdaptiveController(stacks[0], oracle, poll_interval=0.02)
    controller.start()
    sim.schedule_at(
        INTRUSION_DETECTED_AT, lambda: oracle.escalate("secure")
    )

    # Group traffic before and after the escalation.
    secrets = []
    for i in range(20):
        body = f"quarterly-numbers-{i}"
        secrets.append(body)
        sim.schedule_at(
            0.08 * (i + 1), lambda i=i, body=body: stacks[i % GROUP_SIZE].cast(body, 128)
        )

    sim.run_until(5.0)

    leaked = [body for __, body in overheard if isinstance(body, str) and body.startswith("quarterly")]
    leaked_after = [
        body
        for when, body in overheard
        if isinstance(body, str) and body.startswith("quarterly") and when > 1.0
    ]
    print(f"messages overheard in the clear (total): {len(leaked)}")
    print(f"messages overheard after escalation settled (t>1s): {len(leaked_after)}")
    assert leaked, "before the escalation, the wire really was readable"
    assert not leaked_after, "after the escalation, the eavesdropper is blind"

    # The application never noticed: every member got every message.
    for rank in group:
        assert sorted(deliveries[rank]) == sorted(secrets)
    print(f"all {len(secrets)} messages delivered at all members")
    print(f"protocol now: {stacks[0].current_protocol}")


if __name__ == "__main__":
    main()
