#!/usr/bin/env python3
"""On-line protocol upgrading (§1, second use case).

"Protocol switching can be used to upgrade networking protocols at
run-time without having to restart applications.  Even minor bug fixes
may be done in this way."

Here "v1" is a reliable-multicast deployment with conservative timers,
and "v2" is the patched build with snappier retransmission.  A
ScheduledOracle performs the maintenance-window swap while a lossy
network and a live workload keep running.  Nothing is lost, nothing is
duplicated, nothing restarts.

Run:  python examples/online_upgrade.py
"""

from repro import ProtocolSpec, Simulator, build_switch_group
from repro.core import AdaptiveController, ScheduledOracle
from repro.net import FaultPlan, PointToPointNetwork
from repro.protocols import ReliableConfig, ReliableLayer
from repro.sim import RandomStreams
from repro.stack import Group

GROUP_SIZE = 5
UPGRADE_AT = 1.0
MESSAGES = 100


def main() -> None:
    sim = Simulator()
    streams = RandomStreams(11)
    network = PointToPointNetwork(
        sim,
        GROUP_SIZE,
        faults=FaultPlan(loss_rate=0.10, reorder_jitter=1e-3),
        rng=streams,
    )
    group = Group.of_size(GROUP_SIZE)

    protocols = [
        ProtocolSpec(
            "reliable-v1",
            lambda rank: [ReliableLayer(ReliableConfig(tick_interval=0.050))],
        ),
        ProtocolSpec(
            "reliable-v2",  # the "patched" build: faster recovery
            lambda rank: [ReliableLayer(ReliableConfig(tick_interval=0.010))],
        ),
    ]
    stacks = build_switch_group(
        sim, network, group, protocols, initial="reliable-v1"
    )

    deliveries = {rank: [] for rank in group}
    for rank, stack in stacks.items():
        stack.on_deliver(
            lambda msg, rank=rank: deliveries[rank].append(msg.body)
        )

    # The maintenance window: swap protocols at t=1.0 s.
    oracle = ScheduledOracle([(UPGRADE_AT, "reliable-v2")])
    controller = AdaptiveController(stacks[0], oracle, poll_interval=0.05)
    controller.start()

    # A continuous application workload across the upgrade.
    for i in range(MESSAGES):
        sim.schedule_at(
            0.02 * (i + 1), lambda i=i: stacks[i % GROUP_SIZE].cast(i, 256)
        )

    sim.run_until(30.0)

    upgraded = [s.current_protocol for s in stacks.values()]
    print(f"protocol at every member after t={UPGRADE_AT}s window: {set(upgraded)}")
    print(f"oracle decisions: {[(d.time, d.to_protocol) for d in controller.decisions]}")

    for rank in group:
        got = sorted(deliveries[rank])
        assert got == list(range(MESSAGES)), (
            f"member {rank}: lost or duplicated messages across the upgrade"
        )
    print(f"all {MESSAGES} messages delivered exactly once at all "
          f"{GROUP_SIZE} members, across 10% loss AND the upgrade")

    # The upgrade was not a restart: the new protocol's recovery really is
    # the one handling traffic now.
    v2 = stacks[0].find_slot_layer("reliable-v2", ReliableLayer)
    assert v2.stats.get("delivered") > 0
    print("v2 build confirmed live (its delivery counters are moving)")


if __name__ == "__main__":
    main()
