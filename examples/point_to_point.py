#!/usr/bin/env python3
"""Point-to-point protocol switching (§1's "easily specialized" claim).

A client and a server talk over a :class:`SwitchableChannel` — a
two-party connection whose wire protocol can be swapped mid-conversation
with the same old-before-new guarantee as the group case.  Here the
conversation starts on a bare FIFO protocol and upgrades to a reliable
one when the link turns lossy.

Run:  python examples/point_to_point.py
"""

from repro import ProtocolSpec, Simulator
from repro.core import SwitchableChannel
from repro.net import FaultPlan, PointToPointNetwork
from repro.protocols import FifoLayer, ReliableLayer
from repro.sim import RandomStreams


def main() -> None:
    sim = Simulator()
    streams = RandomStreams(29)
    # The link turns lossy at t=0.5 s (a degrading wireless hop, say).
    network = PointToPointNetwork(sim, 2, rng=streams)
    channel = SwitchableChannel(
        sim,
        network,
        0,
        1,
        [
            ProtocolSpec("fifo", lambda rank: [FifoLayer()]),
            ProtocolSpec("reliable", lambda rank: [ReliableLayer()]),
        ],
        initial="fifo",
        streams=streams,
    )
    client, server = channel

    received = []
    server.on_receive(received.append)
    replies = []
    client.on_receive(replies.append)

    def serve(body):
        server.send(f"ack:{body}")

    server.on_receive(serve)

    # Conversation before the link degrades...
    for i in range(5):
        sim.schedule_at(0.05 * (i + 1), lambda i=i: client.send(f"req-{i}"))

    # ... the monitoring notices rising loss and upgrades the protocol ...
    sim.schedule_at(0.40, lambda: client.request_switch("reliable"))
    sim.schedule_at(
        0.50, lambda: setattr(network.faults, "loss_rate", 0.30)
    )

    # ... and the conversation continues across 30% loss.
    for i in range(5, 10):
        sim.schedule_at(0.1 * (i + 1), lambda i=i: client.send(f"req-{i}"))

    sim.run_until(20.0)

    print(f"protocol now: {client.current_protocol} / {server.current_protocol}")
    print(f"server received ({len(received)}): {received}")
    print(f"client got acks ({len(replies)}): {len(replies)} of 10")
    assert received == [f"req-{i}" for i in range(10)], "in order, no loss"
    assert sorted(replies) == [f"ack:req-{i}" for i in range(10)]
    print("all ten requests and acks survived the loss, in order,")
    print("across a live protocol upgrade — no reconnection needed")


if __name__ == "__main__":
    main()
