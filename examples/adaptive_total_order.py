#!/usr/bin/env python3
"""The paper's headline use case: adaptive total order (§7).

A ten-member group on the simulated 10 Mbit Ethernet.  The number of
active senders ramps 2 → 8 → 2 over the run.  A hysteresis oracle at the
coordinator watches the active-sender count and switches between the
sequencer protocol (best at low load) and the token ring (best at high
load) — "the best of both worlds".

The script prints a timeline of oracle decisions and per-phase latency,
showing the hybrid tracking whichever specialist is currently better.

Run:  python examples/adaptive_total_order.py
"""

from repro import Simulator
from repro.core import (
    ActivityMonitor,
    AdaptiveController,
    HysteresisOracle,
    ProtocolSpec,
    build_switch_group,
)
from repro.net import EthernetNetwork, EthernetParams
from repro.protocols import SequencerLayer, TokenRingLayer
from repro.sim import RandomStreams
from repro.stack import Group
from repro.workloads import LatencyProbe, PoissonSender

GROUP_SIZE = 10
RATE = 50.0  # msgs/sec per active sender, as in the paper
PHASES = [
    # (start, end, active senders)
    (0.0, 3.0, 2),
    (3.0, 6.0, 8),
    (6.0, 9.0, 2),
]


def main() -> None:
    sim = Simulator()
    streams = RandomStreams(7)
    network = EthernetNetwork(
        sim,
        GROUP_SIZE,
        EthernetParams(cpu_send=0.7e-3, cpu_recv=0.7e-3),
        rng=streams,
    )
    group = Group.of_size(GROUP_SIZE)
    protocols = [
        ProtocolSpec(
            "sequencer", lambda rank: [SequencerLayer(order_cost=0.9e-3)]
        ),
        ProtocolSpec("token", lambda rank: [TokenRingLayer()]),
    ]
    stacks = build_switch_group(
        sim, network, group, protocols, initial="sequencer"
    )

    # The adaptive loop lives at the coordinator.
    manager = stacks[group.coordinator]
    monitor = ActivityMonitor(sim, window=0.5)
    manager.on_deliver(monitor.observe)
    oracle = HysteresisOracle(
        metric=monitor.active_senders,
        low_threshold=4.5,
        high_threshold=5.5,
        low_protocol="sequencer",
        high_protocol="token",
        min_dwell=0.5,
    )
    controller = AdaptiveController(manager, oracle, poll_interval=0.1)
    controller.start()

    probe = LatencyProbe(sim, warmup=0.5)
    probe.attach_all(stacks)

    # Workload: per-phase sender populations.
    for start, end, count in PHASES:
        for rank in list(group)[:count]:
            PoissonSender(
                sim,
                stacks[rank],
                rate=RATE,
                rng=streams.stream(f"w{rank}@{start}"),
                start=start,
                stop=end,
            ).start()

    # Sample latency per phase by snapshotting the probe between phases.
    phase_stats = []

    def snapshot(label):
        def take():
            phase_stats.append(
                (label, probe.latency.count, probe.mean_ms if probe.latency.count else 0.0)
            )
        return take

    for start, end, count in PHASES:
        sim.schedule_at(end - 0.01, snapshot(f"{count} senders until t={end}"))

    sim.run_until(9.5)

    print("Oracle decision timeline:")
    for decision in controller.decisions:
        print(
            f"  t={decision.time:6.2f}s  "
            f"{decision.from_protocol} -> {decision.to_protocol}"
        )
    print()
    print("Cumulative mean latency at phase boundaries:")
    for label, count, mean in phase_stats:
        print(f"  {label:<24} samples={count:<6} mean={mean:6.2f} ms")
    print()
    print(f"Final protocol: {manager.current_protocol}")
    print(f"Switches completed: {manager.core.switches_completed}")

    # The ramp up and the ramp down each trigger exactly one switch.
    assert manager.core.switches_completed == 2
    assert manager.current_protocol == "sequencer"


if __name__ == "__main__":
    main()
