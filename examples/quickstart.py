#!/usr/bin/env python3
"""Quickstart: switch a live group between two total-order protocols.

Builds a four-member group whose stack mounts sequencer-based and
token-ring total order under the paper's switching protocol, sends
messages before, during, and after a runtime switch, and verifies the
two guarantees that make the SP useful:

* total order is preserved across the switch, and
* every process delivers all old-protocol messages before any
  new-protocol message.

Run:  python examples/quickstart.py
"""

from repro import ProtocolSpec, Simulator, build_switch_group
from repro.net import PointToPointNetwork
from repro.protocols import SequencerLayer, TokenRingLayer
from repro.stack import Group
from repro.traces import TotalOrder, TraceRecorder


def main() -> None:
    sim = Simulator()
    network = PointToPointNetwork(sim, 4)
    group = Group.of_size(4)

    # Two subordinate protocols, mounted under the switching protocol.
    protocols = [
        ProtocolSpec("sequencer", lambda rank: [SequencerLayer()]),
        ProtocolSpec("token", lambda rank: [TokenRingLayer()]),
    ]
    stacks = build_switch_group(
        sim, network, group, protocols, initial="sequencer"
    )

    # Observe deliveries at every member, and record the global trace.
    deliveries = {rank: [] for rank in group}
    for rank, stack in stacks.items():
        stack.on_deliver(
            lambda msg, rank=rank: deliveries[rank].append(msg.body)
        )
    recorder = TraceRecorder(sim)
    recorder.attach_all(stacks)

    # Phase 1: everyone multicasts over the sequencer protocol.
    for i in range(4):
        sim.schedule_at(0.002 * (i + 1), lambda i=i: stacks[i].cast(f"pre-{i}"))

    # Phase 2: member 2's oracle decides to switch; sends keep flowing.
    sim.schedule_at(0.02, lambda: stacks[2].request_switch("token"))
    for i in range(4):
        sim.schedule_at(0.025 + 0.002 * i, lambda i=i: stacks[i].cast(f"mid-{i}"))

    # Phase 3: messages after the switch completes.
    for i in range(4):
        sim.schedule_at(0.2 + 0.002 * i, lambda i=i: stacks[i].cast(f"post-{i}"))

    sim.run_until(1.0)

    print("Delivery order at member 0:")
    for body in deliveries[0]:
        print(f"  {body}")

    assert all(s.current_protocol == "token" for s in stacks.values())
    assert all(deliveries[r] == deliveries[0] for r in group), (
        "every member delivered the same sequence"
    )
    pre = [i for i, b in enumerate(deliveries[0]) if b.startswith("pre")]
    rest = [i for i, b in enumerate(deliveries[0]) if not b.startswith("pre")]
    assert max(pre) < min(rest), "old-protocol messages drained first"
    assert TotalOrder().holds(recorder.trace()), "total order preserved"

    print()
    print("current protocol everywhere:", stacks[0].current_protocol)
    print("total order preserved across the switch: yes")
    print("old-before-new delivery invariant:       yes")


if __name__ == "__main__":
    main()
