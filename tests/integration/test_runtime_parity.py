"""Runtime parity: the boundary must not change what the engine computes.

Three pins:

1. Two SimRuntime runs at the same seed produce *identical* delivery
   traces — the boundary preserves the engine's determinism.
2. The Figure 2 pipeline at a pinned seed reproduces the exact numbers
   captured against the pre-boundary code (bit-for-bit regression
   fixture — any drift means the refactor changed event order).
3. The same switch demo completes with a clean oracle on both runtimes,
   including the real asyncio/UDP one.
"""

from repro.workloads.experiment import Figure2Config, run_figure2_sweep
from repro.workloads.switchrun import SwitchRunConfig, run_switch_demo


def _trace_of(seed):
    result = run_switch_demo(
        SwitchRunConfig(runtime="sim", duration=1.5, switch_at=0.7, seed=seed)
    )
    assert result.ok, result.violations
    return result


def test_identical_seeds_identical_results():
    first = _trace_of(seed=7)
    second = _trace_of(seed=7)
    assert first.casts == second.casts
    assert first.delivered == second.delivered
    assert first.mean_ms == second.mean_ms  # exact float equality
    assert first.median_ms == second.median_ms
    assert first.p90_ms == second.p90_ms
    assert first.switch_duration_ms == second.switch_duration_ms
    assert first.settle_time == second.settle_time


def test_different_seeds_differ():
    # Sanity check that the pin above is not vacuous.
    assert _trace_of(seed=7).mean_ms != _trace_of(seed=8).mean_ms


# Captured by running this exact configuration against the pre-boundary
# code (raw Simulator everywhere).  Floats are compared *exactly*: the
# SimRuntime adapter must be a zero-cost pass-through, so the refactor
# may not perturb a single event ordering or arithmetic step.
PINNED_CONFIG = dict(duration=2.0, warmup=0.5, seed=42)
PINNED_FIGURE2 = [
    ("sequencer", 2, 5.342429044517706, 5.59599999999949, 8.274818782109339, 1571),
    ("sequencer", 6, 19.560713019903783, 17.154582870028023, 35.702327569477774, 4609),
    ("token", 2, 11.565815320193126, 11.467644034820646, 19.05230031824545, 1550),
    ("token", 6, 15.720978383470724, 15.2980082277846, 26.299111326505912, 4650),
]


def test_figure2_pinned_seed_is_byte_identical_to_pre_boundary_capture():
    config = Figure2Config(**PINNED_CONFIG)
    results = run_figure2_sweep(("sequencer", "token"), [2, 6], config)
    got = [
        (r.protocol, r.active_senders, r.mean_ms, r.median_ms, r.p90_ms, r.samples)
        for protocol in ("sequencer", "token")
        for r in results[protocol]
    ]
    assert got == PINNED_FIGURE2


def test_asyncio_udp_switch_completes_with_clean_oracle():
    # The tentpole acceptance check: the identical stack, workload and
    # oracle, but over real localhost UDP datagrams on the wall clock.
    result = run_switch_demo(
        SwitchRunConfig(
            runtime="asyncio",
            duration=1.2,
            switch_at=0.5,
            rate=40.0,
            base_port=47610,
        )
    )
    assert result.ok, result.violations
    assert result.runtime == "asyncio"
    assert set(result.final_protocols.values()) == {"tokenring"}
    assert result.switches_completed == 1
    assert all(count > 0 for count in result.delivered.values())
