"""Integration tests on the shared-Ethernet model — the Figure 2
substrate, exercised at test scale."""

import pytest

from repro.core.stats import ActivityMonitor
from repro.core.switchable import ProtocolSpec, build_switch_group
from repro.net.ethernet import EthernetNetwork, EthernetParams
from repro.protocols.reliable import ReliableLayer
from repro.protocols.sequencer import SequencerLayer
from repro.protocols.tokenring import TokenRingLayer
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.stack.membership import Group
from repro.stack.stack import build_group
from repro.workloads.generator import PoissonSender
from repro.workloads.latency import LatencyProbe


def ethernet_group(n, layer_factory, seed=41, **params):
    sim = Simulator()
    streams = RandomStreams(seed)
    net = EthernetNetwork(sim, n, EthernetParams(**params), rng=streams)
    group = Group.of_size(n)
    stacks = build_group(sim, net, group, layer_factory, streams=streams)
    return sim, net, stacks


def test_sequencer_latency_grows_with_load():
    """The left curve of Figure 2 in miniature: more senders, more
    sequencer queueing, higher latency."""

    def run(k):
        sim, net, stacks = ethernet_group(
            6, lambda r: [SequencerLayer(order_cost=1e-3)]
        )
        probe = LatencyProbe(sim, warmup=0.5)
        probe.attach_all(stacks)
        streams = RandomStreams(5)
        for rank in range(k):
            PoissonSender(
                sim, stacks[rank], rate=60.0, rng=streams.stream(f"s{rank}")
            ).start()
        sim.run_until(2.0)
        return probe.mean_ms

    assert run(6) > run(1) * 1.5


def test_token_latency_is_flat_under_load():
    def run(k):
        sim, net, stacks = ethernet_group(6, lambda r: [TokenRingLayer()])
        probe = LatencyProbe(sim, warmup=0.5)
        probe.attach_all(stacks)
        streams = RandomStreams(5)
        for rank in range(k):
            PoissonSender(
                sim, stacks[rank], rate=60.0, rng=streams.stream(f"s{rank}")
            ).start()
        sim.run_until(2.0)
        return probe.mean_ms

    assert run(6) < run(1) * 2.0


def test_switch_over_ethernet_with_cpu_contention():
    sim = Simulator()
    streams = RandomStreams(43)
    net = EthernetNetwork(sim, 6, EthernetParams(), rng=streams)
    group = Group.of_size(6)
    specs = [
        ProtocolSpec("seq", lambda r: [SequencerLayer(order_cost=1e-3)]),
        ProtocolSpec("tok", lambda r: [TokenRingLayer()]),
    ]
    stacks = build_switch_group(
        sim, net, group, specs, initial="seq", streams=streams
    )
    bodies = {r: [] for r in group}
    for rank, stack in stacks.items():
        stack.on_deliver(lambda m, rank=rank: bodies[rank].append(m.body))
    for i in range(30):
        sim.schedule_at(0.01 * (i + 1), lambda i=i: stacks[i % 6].cast(i, 512))
    sim.schedule_at(0.15, lambda: stacks[3].request_switch("tok"))
    sim.run_until(3.0)
    assert all(s.current_protocol == "tok" for s in stacks.values())
    reference = bodies[0]
    assert len(reference) == 30
    assert all(bodies[r] == reference for r in group)


def test_ethernet_loss_with_reliable_layer():
    sim, net, stacks = ethernet_group(
        4, lambda r: [ReliableLayer()], loss_rate=0.2
    )
    got = {r: [] for r in range(4)}
    for rank, stack in stacks.items():
        stack.on_deliver(lambda m, rank=rank: got[rank].append(m.body))
    for i in range(20):
        sim.schedule_at(0.01 * (i + 1), lambda i=i: stacks[i % 4].cast(i, 256))
    sim.run_until(10.0)
    for rank in range(4):
        assert sorted(got[rank]) == list(range(20))


def test_activity_monitor_tracks_workload_phase():
    sim, net, stacks = ethernet_group(6, lambda r: [])
    monitor = ActivityMonitor(sim, window=0.4)
    stacks[0].on_deliver(monitor.observe)
    streams = RandomStreams(5)
    for rank in range(4):
        PoissonSender(
            sim, stacks[rank], rate=50.0, rng=streams.stream(f"s{rank}"),
            stop=1.0,
        ).start()
    sim.run_until(0.9)
    assert monitor.active_senders() == 4
    sim.run_until(2.5)
    assert monitor.active_senders() == 0


def test_wire_utilization_reflects_load():
    sim, net, stacks = ethernet_group(4, lambda r: [])
    streams = RandomStreams(5)
    for rank in range(4):
        PoissonSender(
            sim, stacks[rank], rate=100.0, rng=streams.stream(f"s{rank}"),
            body_size=1024,
        ).start()
    sim.run_until(2.0)
    utilization = net.medium.utilization(2.0)
    # 400 msg/s x ~0.86 ms serialization ~= 0.35
    assert 0.2 < utilization < 0.6
    for cpu in net.cpus:
        assert cpu.utilization(2.0) < 0.9
