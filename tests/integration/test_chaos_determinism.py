"""Determinism regression: chaos runs are replayable bit for bit.

``run_chaos`` seeds every random stream (workload, faults, switch
schedule) purely from ``ChaosConfig.seed``, so the same config must
produce an identical :class:`ChaosResult` whether it runs inline, in a
single worker process, or fanned across a pool.  This is what makes a
chaos violation reportable as *just a seed* — and what the sweeprunner
relies on to keep its merged artifact byte-identical for any
``--workers`` value.
"""

from repro.testing.chaos import ChaosConfig, run_chaos, run_chaos_cell
from repro.workloads.parallel import run_cells

SEEDS = (3, 11)


def config(seed):
    return ChaosConfig(
        members=4,
        seed=seed,
        duration=2.0,
        control_loss=0.05,
        control_dup=0.02,
        control_jitter=0.004,
    )


def fingerprint(result):
    """Every execution-derived field of a ChaosResult."""
    return (
        result.violations,
        result.final_protocols,
        result.casts,
        result.delivered,
        result.switches_completed,
        result.switches_aborted,
        result.counters,
        result.timeline,
        result.settle_time,
    )


def test_same_seed_same_result_inline():
    for seed in SEEDS:
        assert fingerprint(run_chaos(config(seed))) == fingerprint(
            run_chaos(config(seed))
        )


def test_chaos_results_identical_across_worker_counts():
    """Serial vs. pool-of-4: the sweep fans chaos cells across real
    subprocesses (run_cells only clamps to the cell count, not the CPU
    count), so this exercises config pickling + fresh-interpreter runs.
    """
    cells = [{"config": config(seed)} for seed in SEEDS]
    serial = [fingerprint(run_chaos(cell["config"])) for cell in cells]
    one = [
        fingerprint(r) for r in run_cells(cells, run_chaos_cell, workers=1)
    ]
    pooled = [
        fingerprint(r) for r in run_cells(cells, run_chaos_cell, workers=4)
    ]
    assert serial == one
    assert serial == pooled


def test_different_seeds_diverge():
    """Sanity check that the fingerprint has discriminating power."""
    a = fingerprint(run_chaos(config(SEEDS[0])))
    b = fingerprint(run_chaos(config(SEEDS[1])))
    assert a != b
