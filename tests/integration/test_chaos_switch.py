"""Acceptance tests: seeded chaos runs with surgical token loss.

The ISSUE's bar for the fault-tolerant SP: a seeded chaos run that drops
the token mid-PREPARE and mid-FLUSH must complete (or cleanly abort)
within bounded *simulated* time, with the recovery counters showing how
the group got there.  No wall-clock sleeps anywhere — everything runs on
the discrete-event clock.
"""

from helpers import switch_group

from repro.core.token_switch import FaultToleranceConfig
from repro.net.faults import FaultDecision, FaultPlan
from repro.protocols.reliable import ReliableLayer
from repro.protocols.sequencer import SequencerLayer
from repro.protocols.tokenring import TokenRingLayer
from repro.core.switchable import ProtocolSpec
from repro.testing.chaos import ChaosConfig, run_chaos


def drop_control(kind, count=1):
    """An intercept dropping the first ``count`` control copies of ``kind``.

    The chaos runner mounts the SP control channel bare (no reliable
    layer), so a dropped copy is gone for good; only the FT machinery
    can recover it.
    """
    budget = {"left": count}

    def intercept(time, src, dst, channel, payload):
        body = getattr(payload, "body", None)
        if (
            budget["left"] > 0
            and channel == 0
            and isinstance(body, tuple)
            and body
            and body[0] == kind
        ):
            budget["left"] -= 1
            return FaultDecision(drop=True)
        return None

    return intercept


def test_dropped_prepare_token_still_completes():
    """Losing the token mid-PREPARE is healed by a hop retransmission."""
    result = run_chaos(
        ChaosConfig(
            seed=11,
            duration=2.0,
            cast_rate=40.0,
            switch_every=0.5,
            intercept=drop_control("prepare"),
        )
    )
    assert result.ok, result.violations
    assert result.switches_completed >= 1
    assert result.counters.get("hop_retransmits", 0) >= 1
    assert result.settle_time < result.config.duration + result.config.settle


def test_dropped_flush_token_still_completes():
    """Losing the token mid-FLUSH is healed the same way."""
    result = run_chaos(
        ChaosConfig(
            seed=11,
            duration=2.0,
            cast_rate=40.0,
            switch_every=0.5,
            intercept=drop_control("flush"),
        )
    )
    assert result.ok, result.violations
    assert result.switches_completed >= 1
    assert result.counters.get("hop_retransmits", 0) >= 1


def test_sustained_prepare_loss_reroutes_around_silence():
    """Exhausting the hop retry budget suspects the successor and reroutes.

    Dropping every copy of the first PREPARE hop (original + all
    retries) makes the forwarder give up on its successor; the rotation
    must still close by routing around it, and the false suspicion must
    be withdrawn once the member is heard from again.
    """
    result = run_chaos(
        ChaosConfig(
            seed=11,
            duration=3.0,
            cast_rate=40.0,
            switch_every=0.5,
            intercept=drop_control("prepare", count=4),
        )
    )
    assert result.ok, result.violations
    assert result.switches_completed + result.switches_aborted >= 1
    assert result.counters.get("suspected", 0) >= 1
    assert result.counters.get("hop_reroutes", 0) >= 1


def _specs():
    return [
        ProtocolSpec("seq", lambda r: [SequencerLayer(), ReliableLayer()]),
        ProtocolSpec("tok", lambda r: [TokenRingLayer(), ReliableLayer()]),
    ]


def test_undrainable_flush_aborts_back_to_old_protocol():
    """A FLUSH that cannot drain aborts instead of wedging.

    Rank 3 never receives old-slot (``seq``) data, so it can never
    satisfy the drain vector.  The budgeted watchdog must abort the
    switch with a structured outcome and put *every* member back on the
    old protocol.
    """
    victim = 3

    def intercept(time, src, dst, channel, payload):
        if channel == 1 and dst == victim:  # "seq" slot data only
            return FaultDecision(drop=True)
        return None

    ft = FaultToleranceConfig(
        hop_timeout=0.01,
        max_hop_retries=2,
        phase_timeout=0.05,
        normal_timeout=0.1,
        abort_after=3,
    )
    sim, stacks, log = switch_group(
        4,
        _specs(),
        "seq",
        faults=FaultPlan(intercept=intercept),
        token_interval=0.002,
        fault_tolerance=ft,
    )
    outcomes = []
    for rank, stack in stacks.items():
        stack.on_switch_aborted(
            lambda outcome, rank=rank: outcomes.append((rank, outcome))
        )
    sim.schedule(0.01, lambda: stacks[0].cast(("pre-switch", 0)))
    sim.schedule(0.02, lambda: stacks[1].cast(("pre-switch", 1)))
    sim.schedule(0.1, lambda: stacks[0].request_switch("tok"))
    sim.run_until(5.0)

    assert len({rank for rank, __ in outcomes}) == 4, outcomes
    for rank, stack in stacks.items():
        abort = stack.last_abort
        assert abort is not None
        assert abort.old == "seq" and abort.new == "tok"
        assert abort.phase in ("prepare", "switch", "flush", "unknown")
        assert not stack.switching
        assert stack.current_protocol == "seq"
    # All members observed the same dying switch.
    assert len({s.last_abort.switch_id for s in stacks.values()}) == 1
    # The members that could drain still delivered the pre-switch casts.
    assert log.mids(0) == log.mids(1) == log.mids(2)
