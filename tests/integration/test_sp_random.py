"""Property-based integration tests: the SP's §2 contract under
randomized workloads, switch times, and fault plans.

The invariants checked on every randomized execution:

1. **Agreement under total order** — all members deliver identical
   sequences when the slots are total-order protocols.
2. **Old-before-new** — no member delivers a new-protocol message before
   its last old-protocol message (checked via epoch tagging).
3. **Exactly-once** — no loss, no duplication, across loss/reorder
   faults (with reliable slots) and any number of switches.
4. **Convergence** — every member ends on the same protocol, with empty
   buffers, in NORMAL mode.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from helpers import switch_group
from repro.core.switchable import ProtocolSpec
from repro.net.faults import FaultPlan
from repro.protocols.reliable import ReliableLayer
from repro.protocols.sequencer import SequencerLayer
from repro.protocols.tokenring import TokenRingLayer


def order_specs():
    return [
        ProtocolSpec("seq", lambda r: [SequencerLayer(), ReliableLayer()]),
        ProtocolSpec("tok", lambda r: [TokenRingLayer(), ReliableLayer()]),
    ]


@st.composite
def scenario(draw):
    return {
        "seed": draw(st.integers(0, 10_000)),
        "group_size": draw(st.integers(2, 5)),
        "n_messages": draw(st.integers(1, 25)),
        "switch_times": draw(
            st.lists(st.floats(0.005, 0.25), min_size=0, max_size=3)
        ),
        "variant": draw(st.sampled_from(["token", "broadcast"])),
        "loss": draw(st.sampled_from([0.0, 0.0, 0.1])),
    }


@given(scenario())
@settings(max_examples=25, deadline=None)
def test_sp_contract_randomized(params):
    if params["variant"] == "broadcast" and len(params["switch_times"]) > 1:
        # The broadcast variant does not serialize initiations; keep at
        # most one switch for it (the token variant handles several).
        params["switch_times"] = params["switch_times"][:1]

    faults = FaultPlan(loss_rate=params["loss"]) if params["loss"] else None
    sim, stacks, log = switch_group(
        params["group_size"],
        order_specs(),
        "seq",
        params["variant"],
        faults=faults,
        seed=params["seed"],
    )
    n = params["group_size"]

    # Tag each cast with the epoch (protocol) it was sent under, observed
    # at cast time at the sending stack.
    for i in range(params["n_messages"]):
        when = 0.002 * (i + 1)

        def cast(i=i, when=when):
            sender = stacks[i % n]
            sender.cast((sender.core.send_slot, i), 64)

        sim.schedule_at(when, cast)

    targets = ["tok", "seq", "tok"]
    for idx, when in enumerate(sorted(params["switch_times"])):
        sim.schedule_at(
            when,
            lambda t=targets[idx % len(targets)], idx=idx: stacks[
                idx % n
            ].request_switch(t),
        )

    sim.run_until(30.0)

    # 4. Convergence.
    finals = {s.current_protocol for s in stacks.values()}
    assert len(finals) == 1
    assert all(not s.switching for s in stacks.values())
    assert all(s.core.buffered_count == 0 for s in stacks.values())

    # 3. Exactly-once: every member delivered every message once.
    for rank in range(n):
        indices = sorted(i for (__, i) in log.bodies(rank))
        assert indices == list(range(params["n_messages"]))

    # 1. Agreement: identical sequences (slots are total order).
    assert log.all_agree()

    # 2. Old-before-new: per member, for each consecutive delivery pair,
    # a message sent under a protocol never follows one sent under a
    # protocol that was switched *to* later.  With epochs seq->tok->seq
    # tags can repeat, so check at epoch-transition granularity: the
    # delivered tag sequence must have at most as many tag *changes* as
    # switches completed.
    switches = next(iter(stacks.values())).core.switches_completed
    tags = [tag for (tag, __) in log.bodies(0)]
    changes = sum(1 for a, b in zip(tags, tags[1:]) if a != b)
    assert changes <= switches
