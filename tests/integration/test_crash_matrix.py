"""Crash matrix: every member crashes once in every SP phase.

For each (victim, phase) pair the victim fail-silently crashes the
moment it observes a token of that phase; the survivors must converge to
completion-or-abort — same protocol everywhere, nobody stuck mid-switch
— within bounded simulated time.  "normal" covers a member that dies
before the switch even starts (the prepare rotation has to route around
the corpse); the other phases kill a member mid-choreography.
"""

import pytest

from helpers import switch_group

from repro.core.switchable import ProtocolSpec
from repro.core.token_switch import FaultToleranceConfig
from repro.protocols.reliable import ReliableLayer
from repro.protocols.sequencer import SequencerLayer
from repro.protocols.tokenring import TokenRingLayer

MEMBERS = 4
PHASES = ("normal", "prepare", "switch", "flush")

FT = FaultToleranceConfig(
    hop_timeout=0.01,
    max_hop_retries=2,
    phase_timeout=0.06,
    normal_timeout=0.12,
    abort_after=3,
)


def _specs():
    return [
        ProtocolSpec("seq", lambda r: [SequencerLayer(), ReliableLayer()]),
        ProtocolSpec("tok", lambda r: [TokenRingLayer(), ReliableLayer()]),
    ]


def _build(victim, phase, initiator):
    sim, stacks, log = switch_group(
        MEMBERS, _specs(), "seq", token_interval=0.002, fault_tolerance=FT
    )
    network = stacks[0].transport.endpoint.network
    fired = {"crashed": False}

    def crash_on_phase(kind, gen, switch_id):
        if kind == phase and not fired["crashed"]:
            fired["crashed"] = True
            network.fail_node(victim)

    stacks[victim].protocol.on_token(crash_on_phase)
    # Some old-protocol traffic so the drain is real work.
    for i in range(MEMBERS):
        sim.schedule(
            0.005 + 0.002 * i, lambda r=i: stacks[r].cast(("warmup", r))
        )
    sim.schedule(0.05, lambda: stacks[initiator].request_switch("tok"))
    return sim, stacks, network, fired


def _assert_survivors_converge(sim, stacks, survivors):
    for __ in range(60):
        sim.run_for(0.25)
        idle = all(not stacks[r].switching for r in survivors)
        agreed = len({stacks[r].current_protocol for r in survivors}) == 1
        if idle and agreed:
            return
    states = {
        r: (stacks[r].current_protocol, stacks[r].switching)
        for r in survivors
    }
    pytest.fail(f"survivors did not converge within 15s sim: {states}")


@pytest.mark.parametrize("phase", PHASES)
@pytest.mark.parametrize("victim", range(MEMBERS))
def test_crash_in_phase_converges(victim, phase):
    # The initiator is always a survivor here; the victim-as-initiator
    # case is exercised separately below.
    initiator = (victim + 1) % MEMBERS
    sim, stacks, network, fired = _build(victim, phase, initiator)
    sim.run_until(2.0)
    assert fired["crashed"], f"rank {victim} never observed a {phase} token"

    survivors = [r for r in range(MEMBERS) if r != victim]
    _assert_survivors_converge(sim, stacks, survivors)
    completed = any(
        stacks[r].protocol.stats.get("globally_complete") for r in survivors
    )
    aborted = any(stacks[r].last_abort is not None for r in survivors)
    assert completed or aborted, "switch neither completed nor aborted"


@pytest.mark.parametrize("phase", ("prepare", "switch", "flush"))
def test_initiator_crash_in_phase_converges(phase):
    """The initiator dies mid-choreography; a survivor must take over.

    The initiator first observes its own rotation's token when it comes
    back around, so crashing on that observation kills the member that
    holds the switch together — exactly the takeover path.
    """
    victim = initiator = 1
    sim, stacks, network, fired = _build(victim, phase, initiator)
    sim.run_until(2.0)
    assert fired["crashed"], f"initiator never observed a {phase} token"

    survivors = [r for r in range(MEMBERS) if r != victim]
    _assert_survivors_converge(sim, stacks, survivors)
    completed = any(
        stacks[r].protocol.stats.get("globally_complete") for r in survivors
    )
    aborted = any(stacks[r].last_abort is not None for r in survivors)
    assert completed or aborted, "switch neither completed nor aborted"
    # Someone had to step in for the dead initiator.
    recovery_effort = sum(
        stacks[r].protocol.stats.get("takeovers")
        + stacks[r].protocol.stats.get("regenerated_tokens")
        for r in survivors
    )
    assert recovery_effort >= 1


def test_crash_then_recovery_rejoins_the_group():
    """A member that recovers mid-switch is pulled back to the group view."""
    victim = 2
    sim, stacks, network, fired = _build(victim, "prepare", initiator=0)
    sim.schedule(1.0, lambda: network.recover_node(victim))
    sim.run_until(2.0)
    assert fired["crashed"]

    # After recovery *everyone* — victim included — must converge.
    _assert_survivors_converge(sim, stacks, list(range(MEMBERS)))
    assert network.stats.get("node_failures") == 1
    assert network.stats.get("node_recoveries") == 1
