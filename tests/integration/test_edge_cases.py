"""Edge cases across the whole composition: tiny groups, non-contiguous
ranks, physical-size accounting, bit-for-bit determinism."""

from repro.core.switchable import ProtocolSpec, build_switch_group
from repro.net.ethernet import EthernetNetwork, EthernetParams
from repro.net.ptp import PointToPointNetwork
from repro.protocols.fifo import FifoLayer
from repro.protocols.integrity import IntegrityLayer
from repro.protocols.crypto import GroupKey
from repro.protocols.sequencer import SequencerLayer
from repro.protocols.tokenring import TokenRingLayer
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.stack.membership import Group
from repro.stack.stack import build_group
from repro.traces.recorder import TraceRecorder


def test_singleton_group_full_stack():
    """A group of one: every protocol degenerates gracefully."""
    for layer_factory in (
        lambda r: [SequencerLayer()],
        lambda r: [TokenRingLayer()],
        lambda r: [FifoLayer()],
    ):
        sim = Simulator()
        net = PointToPointNetwork(sim, 1)
        stacks = build_group(sim, net, Group.of_size(1), layer_factory)
        got = []
        stacks[0].on_deliver(lambda m: got.append(m.body))
        stacks[0].cast("solo", 8)
        sim.run_until(0.1)
        assert got == ["solo"]


def test_switching_in_a_two_member_group_of_noncontiguous_ranks():
    """Group ranks need not be 0..n-1: nodes 2 and 5 of a larger net."""
    sim = Simulator()
    net = PointToPointNetwork(sim, 7, rng=RandomStreams(91))
    group = Group([2, 5])
    specs = [
        ProtocolSpec("A", lambda r: [FifoLayer()]),
        ProtocolSpec("B", lambda r: [SequencerLayer(sequencer=2)]),
    ]
    stacks = build_switch_group(sim, net, group, specs, initial="A",
                                variant="broadcast")
    got = {2: [], 5: []}
    for rank in group:
        stacks[rank].on_deliver(lambda m, rank=rank: got[rank].append(m.body))
    stacks[2].cast("one", 8)
    sim.schedule_at(0.01, lambda: stacks[5].request_switch("B"))
    sim.schedule_at(0.1, lambda: stacks[5].cast("two", 8))
    sim.run_until(2.0)
    assert all(s.current_protocol == "B" for s in stacks.values())
    assert got[2] == ["one", "two"]
    assert got[5] == ["one", "two"]


def test_header_bytes_cost_wire_time():
    """Physical consistency: stacking layers grows the on-wire size and
    therefore the serialization time on the Ethernet model."""

    def one_hop_latency(layer_factory):
        sim = Simulator()
        net = EthernetNetwork(
            sim, 2,
            EthernetParams(cpu_send=0, cpu_recv=0, propagation=0),
            rng=RandomStreams(0),
        )
        stacks = build_group(sim, net, Group.of_size(2), layer_factory)
        times = []
        stacks[1].on_deliver(lambda m: times.append(sim.now))
        stacks[0].cast("x", 1000)
        sim.run_until(1.0)
        return times[0]

    bare = one_hop_latency(lambda r: [])
    keyed = GroupKey("k")
    stacked = one_hop_latency(
        lambda r: [FifoLayer(), IntegrityLayer(keyed)]
    )
    assert stacked > bare  # MAC (32 B) + fifo (4 B) headers cost wire time


def test_recorded_switch_execution_is_deterministic():
    """The same seeds produce the identical global trace, event for
    event — the reproducibility claim, end to end."""

    def run():
        sim = Simulator()
        net = PointToPointNetwork(sim, 4, rng=RandomStreams(17))
        group = Group.of_size(4)
        specs = [
            ProtocolSpec("seq", lambda r: [SequencerLayer()]),
            ProtocolSpec("tok", lambda r: [TokenRingLayer()]),
        ]
        stacks = build_switch_group(
            sim, net, group, specs, initial="seq", variant="token",
            token_interval=0.002, streams=RandomStreams(17),
        )
        recorder = TraceRecorder(sim)
        recorder.attach_all(stacks)
        for i in range(12):
            sim.schedule_at(0.003 * (i + 1), lambda i=i: stacks[i % 4].cast(i, 32))
        sim.schedule_at(0.015, lambda: stacks[1].request_switch("tok"))
        sim.run_until(2.0)
        return recorder.timed_events()

    first = run()
    second = run()
    assert len(first) == len(second)
    for (t1, e1), (t2, e2) in zip(first, second):
        assert t1 == t2
        assert repr(e1) == repr(e2)


def test_three_protocol_round_robin():
    sim = Simulator()
    net = PointToPointNetwork(sim, 3, rng=RandomStreams(19))
    group = Group.of_size(3)
    specs = [
        ProtocolSpec("x", lambda r: [FifoLayer()]),
        ProtocolSpec("y", lambda r: [SequencerLayer()]),
        ProtocolSpec("z", lambda r: [TokenRingLayer()]),
    ]
    stacks = build_switch_group(
        sim, net, group, specs, initial="x", variant="token",
        token_interval=0.002,
    )
    got = {r: [] for r in group}
    for rank in group:
        stacks[rank].on_deliver(lambda m, rank=rank: got[rank].append(m.body))
    for n, target in enumerate(("y", "z", "x")):
        sim.schedule_at(0.05 * (n + 1), lambda t=target: stacks[0].request_switch(t))
        sim.schedule_at(0.05 * (n + 1) + 0.02, lambda n=n: stacks[1].cast(n, 16))
    sim.run_until(3.0)
    assert all(s.current_protocol == "x" for s in stacks.values())
    assert all(s.core.switches_completed == 3 for s in stacks.values())
    for rank in group:
        assert got[rank] == [0, 1, 2]
