"""Experiment S6 as a test suite: every §5–§6 preservation claim holds
against recorded executions of the real switching protocol."""

import pytest

from repro.workloads.preservation import (
    SCENARIOS,
    scenario_amoeba,
    scenario_confidentiality,
    scenario_integrity,
    scenario_no_replay,
    scenario_prioritized_delivery,
    scenario_reliability,
    scenario_total_order,
    scenario_view_switch_preserves_vs,
    scenario_virtual_synchrony,
)


@pytest.mark.parametrize(
    "scenario", SCENARIOS, ids=lambda s: s.__name__.replace("scenario_", "")
)
def test_scenario_matches_paper(scenario):
    outcome = scenario()
    assert outcome.as_expected, (
        f"{outcome.scenario}: observed "
        f"{'holds' if outcome.holds else 'violated'} but the paper "
        f"({outcome.paper_ref}) says "
        f"{'holds' if outcome.expected_holds else 'violated'} — "
        f"{outcome.explanation}"
    )


def test_controls_demonstrate_causation():
    """Where a control run exists, it flips the verdict — the violation
    (or defense) is attributable to the switch (or the layer)."""
    for scenario in (
        scenario_no_replay,
        scenario_amoeba,
        scenario_prioritized_delivery,
        scenario_virtual_synchrony,
    ):
        outcome = scenario()
        assert outcome.holds is False
        assert outcome.control_holds is True, outcome.scenario
    for scenario in (scenario_integrity, scenario_confidentiality):
        outcome = scenario()
        assert outcome.holds is True
        assert outcome.control_holds is False, outcome.scenario


def test_violation_explanations_are_present():
    outcome = scenario_no_replay()
    assert "twice" in outcome.explanation
    outcome = scenario_amoeba()
    assert "awaiting" in outcome.explanation
