"""Documented limitations: what the §2 assumptions exclude.

The paper's SP assumes its members stay up and its subordinate protocols
deliver exactly once.  These tests pin down what happens when those
assumptions are broken: *liveness* is lost (the switch stalls) but
*safety* (old-before-new, no spurious deliveries) is kept — exactly the
§6.3 discussion of why Safety is required and liveness is future work.
"""

from helpers import switch_group
from repro.core.switchable import ProtocolSpec
from repro.net.faults import FaultPlan, Partition
from repro.protocols.fifo import FifoLayer
from repro.protocols.reliable import ReliableLayer


def specs():
    return [
        ProtocolSpec("A", lambda r: [ReliableLayer()]),
        ProtocolSpec("B", lambda r: [ReliableLayer()]),
    ]


def test_isolated_member_stalls_switch_but_safety_holds():
    """Member 3 is partitioned away forever: nobody can collect its OK /
    drain its counts, so the switch never completes — but no member
    delivers new-protocol traffic early, and nothing is delivered twice."""
    plan = FaultPlan(
        partitions=[Partition.split(0.05, 1e9, [0, 1, 2], [3])]
    )
    sim, stacks, log = switch_group(
        4, specs(), "A", "token", faults=plan, seed=71
    )
    for i in range(8):
        sim.schedule_at(0.002 * (i + 1), lambda i=i: stacks[i % 4].cast(("old", i), 16))
    sim.schedule_at(0.10, lambda: stacks[0].request_switch("B"))
    for i in range(4):
        sim.schedule_at(0.3 + 0.01 * i, lambda i=i: stacks[i % 3].cast(("new", i), 16))
    sim.run_until(5.0)

    # Liveness lost: the switch cannot complete anywhere (the FLUSH token
    # cannot round the ring / member 3 never prepared).
    assert any(s.switching or s.current_protocol == "A" for s in stacks.values())
    # Safety kept at the connected members: the buffered new-protocol
    # messages were never delivered ahead of a completed drain, and
    # nothing was duplicated.
    for rank in (0, 1, 2):
        bodies = log.bodies(rank)
        assert len(bodies) == len(set(bodies))
        new_msgs = [b for b in bodies if b[0] == "new"]
        if new_msgs:
            # If a member did flip (vector satisfied before the cut),
            # every old message preceded every new one.
            old_idx = [i for i, b in enumerate(bodies) if b[0] == "old"]
            new_idx = [i for i, b in enumerate(bodies) if b[0] == "new"]
            assert max(old_idx) < min(new_idx)


def test_lossy_bare_slots_stall_drain_but_never_reorder():
    """With *bare* (non-reliable) slots over a lossy network the §2
    exactly-once assumption fails: the drain can stall.  Even then no
    member violates old-before-new."""
    bare = [
        ProtocolSpec("A", lambda r: [FifoLayer()]),
        ProtocolSpec("B", lambda r: [FifoLayer()]),
    ]
    sim, stacks, log = switch_group(
        3, bare, "A", "broadcast",
        faults=FaultPlan(loss_rate=0.3), seed=72,
    )
    for i in range(10):
        sim.schedule_at(0.002 * (i + 1), lambda i=i: stacks[i % 3].cast(("old", i), 16))
    sim.schedule_at(0.05, lambda: stacks[0].request_switch("B"))
    for i in range(10):
        sim.schedule_at(0.2 + 0.002 * i, lambda i=i: stacks[i % 3].cast(("new", i), 16))
    sim.run_until(10.0)
    for rank in range(3):
        bodies = log.bodies(rank)
        old_idx = [i for i, b in enumerate(bodies) if b[0] == "old"]
        new_idx = [i for i, b in enumerate(bodies) if b[0] == "new"]
        if old_idx and new_idx:
            assert max(old_idx) < min(new_idx)
