"""Integration stress tests: the switching protocol under adverse
conditions — loss, duplication, reordering, heavy load, repeated and
overlapping switch requests."""

import pytest

from helpers import switch_group
from repro.core.switchable import ProtocolSpec
from repro.net.faults import FaultPlan
from repro.protocols.fifo import FifoLayer
from repro.protocols.reliable import ReliableLayer
from repro.protocols.sequencer import SequencerLayer
from repro.protocols.tokenring import TokenRingLayer
from repro.sim.rng import RandomStreams
from repro.traces.properties import Reliability, TotalOrder
from repro.traces.recorder import TraceRecorder


def order_specs():
    return [
        ProtocolSpec("seq", lambda r: [SequencerLayer(), ReliableLayer()]),
        ProtocolSpec("tok", lambda r: [TokenRingLayer(), ReliableLayer()]),
    ]


def test_total_order_across_switch_over_lossy_network():
    sim, stacks, log = switch_group(
        4, order_specs(), "seq", "token",
        faults=FaultPlan(loss_rate=0.10, reorder_jitter=1e-3), seed=31,
    )
    recorder = TraceRecorder(sim)
    recorder.attach_all(stacks)
    for i in range(24):
        sim.schedule_at(0.004 * (i + 1), lambda i=i: stacks[i % 4].cast(i, 64))
    sim.schedule_at(0.05, lambda: stacks[1].request_switch("tok"))
    sim.run_until(20.0)
    assert all(s.current_protocol == "tok" for s in stacks.values())
    assert log.all_agree()
    assert len(log.bodies(0)) == 24
    trace = recorder.trace()
    assert TotalOrder().holds(trace)
    assert Reliability(receivers={0, 1, 2, 3}).holds(trace)


def test_many_sequential_switches_under_load():
    sim, stacks, log = switch_group(3, order_specs(), "seq", "token", seed=32)
    for i in range(60):
        sim.schedule_at(0.005 * (i + 1), lambda i=i: stacks[i % 3].cast(i, 64))
    targets = ["tok", "seq", "tok", "seq"]
    for n, target in enumerate(targets):
        sim.schedule_at(
            0.06 * (n + 1), lambda t=target: stacks[n % 3].request_switch(t)
        )
    sim.run_until(10.0)
    assert all(s.core.switches_completed == 4 for s in stacks.values())
    assert log.all_agree()
    assert len(log.bodies(0)) == 60


def test_rapid_fire_requests_from_all_members():
    """Every member wants a different thing at once; the token serializes
    and the group converges to a single protocol."""
    specs = [
        ProtocolSpec("A", lambda r: [FifoLayer()]),
        ProtocolSpec("B", lambda r: [FifoLayer()]),
        ProtocolSpec("C", lambda r: [FifoLayer()]),
    ]
    sim, stacks, log = switch_group(5, specs, "A", "token", seed=33)
    stacks[1].request_switch("B")
    stacks[2].request_switch("C")
    stacks[3].request_switch("B")
    stacks[4].request_switch("C")
    for i in range(20):
        sim.schedule_at(0.002 * (i + 1), lambda i=i: stacks[i % 5].cast(i, 16))
    sim.run_until(5.0)
    finals = {s.current_protocol for s in stacks.values()}
    assert len(finals) == 1
    assert all(not s.switching for s in stacks.values())
    assert log.all_agree()
    assert len(log.bodies(0)) == 20


def test_switch_during_switch_request_waits_token():
    sim, stacks, log = switch_group(
        3,
        [
            ProtocolSpec("A", lambda r: [FifoLayer()]),
            ProtocolSpec("B", lambda r: [FifoLayer()]),
        ],
        "A",
        "token",
        seed=34,
    )
    stacks[0].request_switch("B")

    def request_back_when_switching() -> None:
        if stacks[0].switching:
            stacks[0].request_switch("A")
        else:
            sim.schedule(0.001, request_back_when_switching)

    # Once the first switch is genuinely in flight, ask to go back; the
    # request is served at the next NORMAL token.
    sim.schedule_at(0.001, request_back_when_switching)
    sim.run_until(3.0)
    assert all(s.current_protocol == "A" for s in stacks.values())
    assert stacks[0].core.switches_completed == 2


def test_heavy_concurrent_load_during_switch():
    sim, stacks, log = switch_group(4, order_specs(), "seq", "broadcast", seed=35)
    # ~100 messages in flight around the switch moment.
    for i in range(100):
        sim.schedule_at(
            0.0005 * (i + 1), lambda i=i: stacks[i % 4].cast(i, 64)
        )
    sim.schedule_at(0.02, lambda: stacks[2].request_switch("tok"))
    sim.run_until(10.0)
    assert all(s.current_protocol == "tok" for s in stacks.values())
    assert log.all_agree()
    assert len(log.bodies(0)) == 100


def test_switch_with_duplicating_network():
    sim, stacks, log = switch_group(
        3, order_specs(), "seq", "token",
        faults=FaultPlan(duplicate_rate=0.3), seed=36,
    )
    for i in range(15):
        sim.schedule_at(0.003 * (i + 1), lambda i=i: stacks[i % 3].cast(i, 64))
    sim.schedule_at(0.02, lambda: stacks[0].request_switch("tok"))
    sim.run_until(10.0)
    assert all(s.current_protocol == "tok" for s in stacks.values())
    # Exactly-once survived duplication + switch:
    for rank in range(3):
        assert sorted(log.bodies(rank)) == list(range(15))


def test_two_member_group():
    sim, stacks, log = switch_group(2, order_specs(), "seq", "token", seed=37)
    stacks[0].cast("a", 16)
    sim.schedule_at(0.01, lambda: stacks[1].request_switch("tok"))
    sim.schedule_at(0.1, lambda: stacks[1].cast("b", 16))
    sim.run_until(3.0)
    assert all(s.current_protocol == "tok" for s in stacks.values())
    assert log.bodies(0) == ["a", "b"]
    assert log.bodies(1) == ["a", "b"]


def test_drain_counts_are_exact():
    """After a switch, delivered counts per member equal the vector:
    nothing lost, nothing spurious."""
    sim, stacks, log = switch_group(3, order_specs(), "seq", "broadcast", seed=38)
    for i in range(12):
        sim.schedule_at(0.002 * (i + 1), lambda i=i: stacks[i % 3].cast(i, 64))
    sim.schedule_at(0.01, lambda: stacks[0].request_switch("tok"))
    sim.run_until(5.0)
    for rank in range(3):
        core = stacks[rank].core
        total_delivered = sum(core.delivered["seq"].values()) + sum(
            core.delivered["tok"].values()
        )
        assert total_delivered == 12
        assert core.buffered_count == 0
