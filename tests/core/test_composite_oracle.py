"""Unit tests for the composite (priority) oracle."""

import pytest

from helpers import switch_group
from repro.core.hybrid import AdaptiveController
from repro.core.oracle import (
    CompositeOracle,
    ManualOracle,
    ScheduledOracle,
    ThresholdOracle,
)
from repro.core.switchable import ProtocolSpec
from repro.errors import SwitchError
from repro.protocols.fifo import FifoLayer


def test_empty_rejected():
    with pytest.raises(SwitchError):
        CompositeOracle([])


def test_priority_order():
    security = ManualOracle()
    performance = ThresholdOracle(lambda: 10.0, 5.0, "low", "high")
    oracle = CompositeOracle([security, performance])
    # Performance wants "high"; security is quiet -> performance wins.
    assert oracle.decide(0.0, "low") == "high"
    # Security escalates; it outranks performance.
    security.escalate("secure")
    assert oracle.decide(1.0, "low") == "secure"


def test_falls_through_quiet_children():
    quiet = ManualOracle()
    scheduled = ScheduledOracle([(1.0, "v2")])
    oracle = CompositeOracle([quiet, scheduled])
    assert oracle.decide(0.5, "v1") is None
    assert oracle.decide(1.5, "v1") == "v2"


def test_security_plus_upgrade_end_to_end():
    """All three §1 use cases coexisting on one controller."""
    specs = [
        ProtocolSpec("plain", lambda r: [FifoLayer()]),
        ProtocolSpec("v2", lambda r: [FifoLayer()]),
        ProtocolSpec("secure", lambda r: [FifoLayer()]),
    ]
    sim, stacks, log = switch_group(3, specs, "plain", "token")
    security = ManualOracle()
    upgrade = ScheduledOracle([(0.05, "v2")])
    oracle = CompositeOracle([security, upgrade])
    controller = AdaptiveController(stacks[0], oracle, poll_interval=0.01)
    controller.start()
    # The scheduled upgrade fires first; then an intrusion at t=0.5.
    sim.schedule_at(0.5, lambda: security.escalate("secure"))
    sim.run_until(3.0)
    assert all(s.current_protocol == "secure" for s in stacks.values())
    targets = [d.to_protocol for d in controller.decisions]
    assert targets == ["v2", "secure"]
