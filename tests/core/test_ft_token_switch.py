"""Unit tests for the fault-tolerance layer of the switching protocol.

Covers the opt-in contract (fault-free FT runs look like the baseline),
the silent-wedge fix (a lost token that wedges the baseline forever is
recovered — or cleanly aborted — under FT), the broadcast variant's
switch timeout, and the SwitchCore abort/revert primitives both FT
variants are built on.
"""

import pytest

from helpers import switch_group

from repro.core.base import ProtocolSlot, SwitchAborted, SwitchCore, SwitchMode
from repro.core.switchable import ProtocolSpec
from repro.core.token_switch import FaultToleranceConfig
from repro.errors import SwitchError
from repro.net.faults import FaultDecision, FaultPlan
from repro.protocols.reliable import ReliableLayer
from repro.protocols.sequencer import SequencerLayer
from repro.protocols.tokenring import TokenRingLayer
from repro.stack.message import Message

FT_FAST = FaultToleranceConfig(
    hop_timeout=0.01,
    max_hop_retries=2,
    phase_timeout=0.06,
    normal_timeout=0.12,
    abort_after=3,
)


def _specs():
    return [
        ProtocolSpec("seq", lambda r: [SequencerLayer(), ReliableLayer()]),
        ProtocolSpec("tok", lambda r: [TokenRingLayer(), ReliableLayer()]),
    ]


def drop_first_control(kind, count=1):
    budget = {"left": count}

    def intercept(time, src, dst, channel, payload):
        body = getattr(payload, "body", None)
        if (
            budget["left"] > 0
            and channel == 0
            and isinstance(body, tuple)
            and body
            and body[0] == kind
        ):
            budget["left"] -= 1
            return FaultDecision(drop=True)
        return None

    return intercept


class TestFaultToleranceConfig:
    def test_defaults_are_valid(self):
        FaultToleranceConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hop_timeout": 0.0},
            {"hop_timeout": -1.0},
            {"max_hop_retries": -1},
            {"phase_timeout": 0.0},
            {"normal_timeout": -0.5},
            {"abort_after": 0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(SwitchError):
            FaultToleranceConfig(**kwargs)


class TestFaultFreeParity:
    def test_ft_switch_completes_without_recovery_machinery(self):
        """With no faults, FT adds acks but never stalls or retransmits."""
        sim, stacks, log = switch_group(
            3, _specs(), "seq", token_interval=0.002, fault_tolerance=FT_FAST
        )
        sim.schedule(0.01, lambda: stacks[0].cast("before"))
        sim.schedule(0.05, lambda: stacks[1].request_switch("tok"))
        sim.schedule(0.3, lambda: stacks[2].cast("after"))
        sim.run_until(1.0)
        for stack in stacks.values():
            assert stack.current_protocol == "tok"
            assert not stack.switching
            assert stack.last_abort is None
            stats = stack.protocol.stats
            assert stats.get("stalls_detected") == 0
            assert stats.get("hop_retransmits") == 0
            assert stats.get("regenerated_tokens") == 0
        assert log.all_agree()
        assert len(log.mids(0)) == 2


class TestWedgeFix:
    """The baseline wedges on a single lost token; FT must not."""

    def _run(self, fault_tolerance):
        sim, stacks, log = switch_group(
            3,
            _specs(),
            "seq",
            faults=FaultPlan(intercept=drop_first_control("prepare")),
            token_interval=0.002,
            # Bare control channel: the drop is unrecoverable below the SP.
            control_factory=lambda __: [],
            fault_tolerance=fault_tolerance,
        )
        sim.schedule(0.05, lambda: stacks[0].request_switch("tok"))
        sim.run_until(5.0)
        return stacks

    def test_baseline_wedges_forever(self):
        stacks = self._run(fault_tolerance=None)
        assert stacks[0].switching  # the initiator is stuck mid-switch
        assert stacks[0].current_protocol == "seq"

    def test_ft_recovers_and_completes(self):
        stacks = self._run(fault_tolerance=FT_FAST)
        recovered = sum(
            s.protocol.stats.get("hop_retransmits")
            + s.protocol.stats.get("regenerated_tokens")
            for s in stacks.values()
        )
        assert recovered >= 1
        for stack in stacks.values():
            assert not stack.switching
            assert stack.current_protocol == "tok"


class TestBroadcastSwitchTimeout:
    def test_stuck_switch_aborts_at_every_member(self):
        """The broadcast variant's timeout aborts an undrainable switch."""
        victim = 2

        def intercept(time, src, dst, channel, payload):
            if channel == 1 and dst == victim:  # starve the old slot
                return FaultDecision(drop=True)
            return None

        sim, stacks, log = switch_group(
            3,
            _specs(),
            "seq",
            variant="broadcast",
            faults=FaultPlan(intercept=intercept),
            switch_timeout=0.3,
        )
        outcomes = []
        for rank, stack in stacks.items():
            stack.on_switch_aborted(
                lambda outcome, rank=rank: outcomes.append((rank, outcome))
            )
        sim.schedule(0.01, lambda: stacks[0].cast("undrainable"))
        sim.schedule(0.1, lambda: stacks[0].request_switch("tok"))
        sim.run_until(3.0)

        assert len({rank for rank, __ in outcomes}) == 3, outcomes
        for stack in stacks.values():
            assert not stack.switching
            assert stack.current_protocol == "seq"
            abort = stack.last_abort
            assert abort is not None
            assert abort.old == "seq" and abort.new == "tok"
            assert isinstance(abort, SwitchAborted)

    def test_completing_switch_never_aborts(self):
        sim, stacks, log = switch_group(
            3, _specs(), "seq", variant="broadcast", switch_timeout=0.5
        )
        sim.schedule(0.05, lambda: stacks[0].request_switch("tok"))
        sim.run_until(2.0)
        for stack in stacks.values():
            assert stack.current_protocol == "tok"
            assert stack.last_abort is None

    def test_switch_timeout_must_be_positive(self):
        with pytest.raises(SwitchError):
            switch_group(
                3, _specs(), "seq", variant="broadcast", switch_timeout=0.0
            )

    def test_baseline_token_variant_has_no_abort_hook(self):
        sim, stacks, log = switch_group(3, _specs(), "seq")
        with pytest.raises(SwitchError):
            stacks[0].on_switch_aborted(lambda outcome: None)


# ----------------------------------------------------------------------
# SwitchCore abort/revert primitives
# ----------------------------------------------------------------------
def make_msg(sender, seq, body="x"):
    return Message(sender=sender, mid=(sender, seq), body=body, body_size=1)


def make_core(initial="a", blocking=False):
    sent = {"a": [], "b": []}
    delivered = []
    core = SwitchCore(
        {
            name: ProtocolSlot(
                name, [], lambda m, name=name: sent[name].append(m)
            )
            for name in ("a", "b")
        },
        delivered.append,
        initial,
        block_sends_during_switch=blocking,
    )
    return core, sent, delivered


class TestAbortSwitch:
    def test_abort_outside_switch_rejected(self):
        core, __, __d = make_core()
        with pytest.raises(SwitchError):
            core.abort_switch()

    def test_abort_restores_old_as_current(self):
        core, sent, __ = make_core()
        core.begin_switch("a", "b")
        assert core.send_slot == "b"
        old, new = core.abort_switch()
        assert (old, new) == ("a", "b")
        assert core.mode is SwitchMode.NORMAL
        assert core.current == "a"
        core.app_send(make_msg(0, 1))
        assert len(sent["a"]) == 1 and not sent["b"]

    def test_abort_keeps_new_slot_traffic_buffered(self):
        # Delivering it would violate old-before-new at members that
        # never aborted; it stays buffered as early traffic instead.
        core, __, delivered = make_core()
        core.begin_switch("a", "b")
        core.slot_deliver("b", make_msg(1, 1))
        assert core.buffered_count == 1
        core.abort_switch()
        assert core.buffered_count == 1
        assert delivered == []

    def test_abort_releases_blocked_sends_onto_old(self):
        core, sent, __ = make_core(blocking=True)
        core.begin_switch("a", "b")
        core.app_send(make_msg(0, 1))
        assert not sent["a"] and not sent["b"]  # queued
        core.abort_switch()
        assert len(sent["a"]) == 1 and not sent["b"]


class TestRevertTo:
    def test_revert_during_switch_rejected(self):
        core, __, __d = make_core()
        core.begin_switch("a", "b")
        with pytest.raises(SwitchError):
            core.revert_to("a")

    def test_revert_to_unknown_slot_rejected(self):
        core, __, __d = make_core()
        with pytest.raises(SwitchError):
            core.revert_to("zzz")

    def test_revert_to_current_is_a_noop(self):
        core, __, __d = make_core()
        core.revert_to("a")
        assert core.stats.get("reverts") == 0

    def test_revert_flips_back_and_flushes_adopted_buffer(self):
        core, __, delivered = make_core()
        core.begin_switch("a", "b")
        core.set_vector({})  # nothing owed: completes immediately
        assert core.current == "b"
        # Traffic from members still on "a" buffers as early traffic...
        core.slot_deliver("a", make_msg(2, 1))
        assert core.buffered_count == 1
        before = len(delivered)
        core.revert_to("a")
        # ...and must flush the moment "a" becomes current again.
        assert core.current == "a"
        assert core.buffered_count == 0
        assert len(delivered) == before + 1
        assert core.stats.get("reverts") == 1
