"""Model-based (stateful) testing of the FT token SP phase machine.

A hypothesis rule-based state machine drives a real simulated group of
:class:`ResilientTokenSwitchProtocol` members through random
interleavings of time, casts, switch requests, control-token loss and
crash/recovery, checking the machine's safety properties as it goes:

* generations observed at a member never go backwards (regenerated
  tokens supersede, stragglers are dropped);
* while a member is mid-switch its phase is a real SP phase and its
  sends go to the new slot;
* the application never sees a duplicate delivery;
* after the storm, the group always converges to completion-or-abort —
  every live member idle on the same protocol.
"""

import hypothesis.strategies as st
from hypothesis.stateful import RuleBasedStateMachine, rule

from repro.core.switchable import ProtocolSpec, build_switch_group
from repro.core.token_switch import _PHASE, FaultToleranceConfig
from repro.net.faults import FaultDecision, FaultPlan
from repro.net.ptp import LatencyMatrix, PointToPointNetwork
from repro.protocols.reliable import ReliableLayer
from repro.protocols.sequencer import SequencerLayer
from repro.protocols.tokenring import TokenRingLayer
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.stack.membership import Group

MEMBERS = 3

FT = FaultToleranceConfig(
    hop_timeout=0.01,
    max_hop_retries=2,
    phase_timeout=0.06,
    normal_timeout=0.12,
    abort_after=3,
)


class TokenPhaseMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.sim = Simulator()
        self.drop_budget = 0  # control copies to swallow (token loss)

        def intercept(time, src, dst, channel, payload):
            if channel == 0 and self.drop_budget > 0:
                self.drop_budget -= 1
                return FaultDecision(drop=True)
            return None

        streams = RandomStreams(9)
        self.network = PointToPointNetwork(
            self.sim,
            MEMBERS,
            latency=LatencyMatrix(MEMBERS, 1e-3),
            faults=FaultPlan(intercept=intercept),
            rng=streams,
        )
        group = Group.of_size(MEMBERS)
        specs = [
            ProtocolSpec("seq", lambda r: [SequencerLayer(), ReliableLayer()]),
            ProtocolSpec("tok", lambda r: [TokenRingLayer(), ReliableLayer()]),
        ]
        self.stacks = build_switch_group(
            self.sim,
            self.network,
            group,
            specs,
            initial="seq",
            variant="token",
            token_interval=0.002,
            # Bare control channel: losses hit the FT machinery directly.
            control_factory=lambda __: [],
            streams=streams,
            fault_tolerance=FT,
        )
        self.delivered = {r: [] for r in group}
        self.gen_seen = {}
        self.crashed = set()
        for rank, stack in self.stacks.items():
            stack.on_deliver(
                lambda msg, rank=rank: self.delivered[rank].append(msg.mid)
            )
            stack.protocol.on_token(
                lambda kind, gen, sid, rank=rank: self._observe(rank, gen)
            )

    def _observe(self, rank, gen):
        last = self.gen_seen.get(rank)
        assert last is None or gen >= last, (
            f"generation went backwards at rank {rank}: {last} -> {gen}"
        )
        self.gen_seen[rank] = gen

    def _check_safety(self):
        for rank, stack in self.stacks.items():
            mids = self.delivered[rank]
            assert len(mids) == len(set(mids)), f"duplicates at rank {rank}"
            if stack.core.switching:
                assert stack.core.send_slot == stack.core.new
                assert stack.protocol._active is None or (
                    stack.protocol._active[1] in _PHASE.values()
                )
            else:
                assert stack.core.send_slot == stack.core.current

    # ------------------------------------------------------------------
    @rule(dt=st.floats(0.005, 0.15))
    def tick(self, dt):
        self.sim.run_for(dt)
        self._check_safety()

    @rule(rank=st.sampled_from(range(MEMBERS)))
    def cast(self, rank):
        if rank not in self.crashed:
            self.stacks[rank].cast(("m", rank, self.sim.now))
        self._check_safety()

    @rule(rank=st.sampled_from(range(MEMBERS)))
    def request_switch(self, rank):
        if rank not in self.crashed:
            stack = self.stacks[rank]
            to = "tok" if stack.current_protocol == "seq" else "seq"
            stack.request_switch(to)
        self._check_safety()

    @rule(n=st.integers(1, 4))
    def lose_control_tokens(self, n):
        self.drop_budget += n

    @rule(rank=st.sampled_from(range(MEMBERS)))
    def crash(self, rank):
        # Keep a live majority: at most one member down at a time.
        if not self.crashed:
            self.crashed.add(rank)
            self.network.fail_node(rank)

    @rule()
    def recover(self):
        if self.crashed:
            rank = self.crashed.pop()
            self.network.recover_node(rank)

    # ------------------------------------------------------------------
    def teardown(self):
        # End of the storm: stop losing tokens, revive everyone, and the
        # group must converge — completion-or-abort, never a wedge.
        self.drop_budget = 0
        while self.crashed:
            self.network.recover_node(self.crashed.pop())
        for __ in range(80):
            self.sim.run_for(0.25)
            idle = all(not s.switching for s in self.stacks.values())
            finals = {s.current_protocol for s in self.stacks.values()}
            if idle and len(finals) == 1:
                break
        else:
            states = {
                r: (s.current_protocol, s.switching)
                for r, s in self.stacks.items()
            }
            raise AssertionError(f"group never converged: {states}")
        self._check_safety()


TestTokenPhaseMachine = TokenPhaseMachine.TestCase
TestTokenPhaseMachine.settings = __import__("hypothesis").settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
