"""Unit tests for switchable stack assembly and transparency."""

import pytest

from helpers import ptp_group, switch_group
from repro.core.switchable import ProtocolSpec, SwitchableStack
from repro.errors import SwitchError
from repro.net.ptp import PointToPointNetwork
from repro.protocols.fifo import FifoLayer
from repro.protocols.sequencer import SequencerLayer
from repro.sim.engine import Simulator
from repro.stack.membership import Group


def specs():
    return [
        ProtocolSpec("A", lambda r: [FifoLayer()]),
        ProtocolSpec("B", lambda r: [SequencerLayer()]),
    ]


class TestValidation:
    def test_needs_two_protocols(self):
        sim = Simulator()
        net = PointToPointNetwork(sim, 2)
        with pytest.raises(SwitchError):
            SwitchableStack(
                sim, net, Group.of_size(2), 0,
                [ProtocolSpec("only", lambda r: [])], "only",
            )

    def test_duplicate_names_rejected(self):
        sim = Simulator()
        net = PointToPointNetwork(sim, 2)
        dup = [ProtocolSpec("X", lambda r: []), ProtocolSpec("X", lambda r: [])]
        with pytest.raises(SwitchError):
            SwitchableStack(sim, net, Group.of_size(2), 0, dup, "X")

    def test_unknown_variant_rejected(self):
        sim = Simulator()
        net = PointToPointNetwork(sim, 2)
        with pytest.raises(SwitchError):
            SwitchableStack(
                sim, net, Group.of_size(2), 0, specs(), "A", variant="carrier-pigeon"
            )

    def test_empty_spec_name_rejected(self):
        with pytest.raises(SwitchError):
            ProtocolSpec("", lambda r: [])


class TestTransparency:
    """The application API matches a plain stack's (section 1: 'the
    application cannot tell easily that it is running on the SP')."""

    def test_cast_and_deliver_like_plain_stack(self):
        sim_p, plain, log_p = ptp_group(3, lambda r: [FifoLayer()])
        sim_s, switched, log_s = switch_group(3, specs(), "A")
        for i in range(5):
            plain[i % 3].cast(i, 16)
            switched[i % 3].cast(i, 16)
        sim_p.run()
        sim_s.run_until(1.0)
        for rank in range(3):
            assert log_p.bodies(rank) == log_s.bodies(rank)

    def test_mid_allocation_matches(self):
        sim, stacks, log = switch_group(3, specs(), "A")
        assert stacks[1].cast("x", 16) == (1, 0)

    def test_send_hooks(self):
        sim, stacks, log = switch_group(3, specs(), "A")
        sends = []
        stacks[0].on_send(lambda m: sends.append(m.body))
        stacks[0].cast("observed", 16)
        assert sends == ["observed"]


class TestIntrospection:
    def test_current_protocol(self):
        sim, stacks, log = switch_group(3, specs(), "A")
        assert stacks[0].current_protocol == "A"
        assert not stacks[0].switching

    def test_find_slot_layer(self):
        sim, stacks, log = switch_group(3, specs(), "A")
        assert isinstance(stacks[0].find_slot_layer("A", FifoLayer), FifoLayer)
        assert isinstance(
            stacks[0].find_slot_layer("B", SequencerLayer), SequencerLayer
        )
        with pytest.raises(SwitchError):
            stacks[0].find_slot_layer("A", SequencerLayer)

    def test_slot_traffic_isolated_by_channel(self):
        """Traffic on slot A's channel never reaches slot B's layers."""
        sim, stacks, log = switch_group(3, specs(), "A")
        stacks[0].cast("on-a", 16)
        sim.run_until(0.5)
        seq_layer = stacks[1].find_slot_layer("B", SequencerLayer)
        assert seq_layer.stats.get("delivered") == 0
        fifo_layer = stacks[1].find_slot_layer("A", FifoLayer)
        assert fifo_layer._expected.get(0, 0) == 1
