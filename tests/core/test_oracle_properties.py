"""Property-based tests: the oracle policies cannot flap.

The §7 lesson is that switching "too aggressively" makes the hybrid
oscillate; the hysteresis band plus dwell time is the fix.  These
properties pin the fix down: an oracle that starts on the protocol
matched to its initial regime and watches a *monotone* metric drift
decides at most one switch — ever — no matter where the thresholds
sit, how fast it polls, or how the drift is shaped.  A scheduled
oracle never fires before its schedule says so.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.oracle import (
    CompositeOracle,
    HysteresisOracle,
    ManualOracle,
    ScheduledOracle,
)

LO, HI = "sequencer", "tokenring"


def drive(oracle, state, values, poll, initial):
    """Feed ``values`` to ``oracle`` at fixed poll times; apply switches
    instantly (the best case for a flapping oracle) and log them."""
    current = initial
    decisions = []
    for step, value in enumerate(values):
        state["value"] = value
        target = oracle.decide(step * poll, current)
        if target is not None:
            decisions.append((current, target))
            current = target
    return decisions


@st.composite
def hysteresis_setup(draw):
    low = draw(st.floats(-50.0, 50.0))
    band = draw(st.floats(0.0, 100.0))
    return {
        "low": None if draw(st.booleans()) else low,
        "high": low + band,
        "dwell": draw(st.sampled_from([0.0, 0.05, 0.3, 2.0])),
        "poll": draw(st.sampled_from([0.05, 0.1, 0.5])),
        "values": draw(
            st.lists(st.floats(-200.0, 300.0), min_size=1, max_size=50)
        ),
        "composite": draw(st.booleans()),
    }


def build(setup, state):
    oracle = HysteresisOracle(
        lambda: state["value"],
        setup["low"],
        setup["high"],
        LO,
        HI,
        min_dwell=setup["dwell"],
    )
    if setup["composite"]:
        # Priority composition with a quiet security child: the manual
        # oracle never escalates here, so the hysteresis child's
        # no-flapping guarantee must survive the wrapping.
        return CompositeOracle([ManualOracle(), oracle])
    return oracle


@given(hysteresis_setup())
@settings(max_examples=200, deadline=None)
def test_monotone_rise_from_low_switches_at_most_once(setup):
    values = sorted(setup["values"])
    state = {"value": values[0]}
    oracle = build(setup, state)
    decisions = drive(oracle, state, values, setup["poll"], LO)
    assert len(decisions) <= 1, decisions
    for src, dst in decisions:
        assert (src, dst) == (LO, HI)


@given(hysteresis_setup())
@settings(max_examples=200, deadline=None)
def test_monotone_fall_from_high_switches_at_most_once(setup):
    values = sorted(setup["values"], reverse=True)
    state = {"value": values[0]}
    oracle = build(setup, state)
    decisions = drive(oracle, state, values, setup["poll"], HI)
    assert len(decisions) <= 1, decisions
    for src, dst in decisions:
        assert (src, dst) == (HI, LO)


@given(hysteresis_setup())
@settings(max_examples=200, deadline=None)
def test_latching_oracle_never_switches_down(setup):
    """low_threshold=None escalates at most once under ANY value path."""
    state = {"value": 0.0}
    oracle = HysteresisOracle(
        lambda: state["value"],
        None,
        setup["high"],
        LO,
        HI,
        min_dwell=setup["dwell"],
    )
    # Values arbitrary (not sorted): the latch must hold regardless.
    decisions = drive(oracle, state, setup["values"], setup["poll"], LO)
    assert len(decisions) <= 1, decisions
    for src, dst in decisions:
        assert (src, dst) == (LO, HI)


@st.composite
def schedule_setup(draw):
    times = draw(
        st.lists(st.floats(0.1, 50.0), min_size=1, max_size=8, unique=True)
    )
    return {
        "schedule": [
            (time, HI if index % 2 == 0 else LO)
            for index, time in enumerate(sorted(times))
        ],
        "poll": draw(st.sampled_from([0.05, 0.25, 1.0])),
        "steps": draw(st.integers(1, 120)),
    }


@given(schedule_setup())
@settings(max_examples=200, deadline=None)
def test_scheduled_oracle_never_fires_early(setup):
    oracle = ScheduledOracle(setup["schedule"])
    earliest = setup["schedule"][0][0]
    current = LO
    fired_at = []
    for step in range(setup["steps"]):
        now = step * setup["poll"]
        target = oracle.decide(now, current)
        if target is not None:
            fired_at.append(now)
            current = target
    assert all(now >= earliest for now in fired_at), (fired_at, earliest)
    # And it never fires more often than the schedule has entries.
    assert len(fired_at) <= len(setup["schedule"])
    # Entries at or before the horizon have been consumed.
    horizon = (setup["steps"] - 1) * setup["poll"]
    due = sum(1 for time, __ in setup["schedule"] if time <= horizon)
    assert oracle.remaining <= len(setup["schedule"]) - due
