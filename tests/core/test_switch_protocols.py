"""Integration-style unit tests for both SP variants' choreography."""

import pytest

from helpers import switch_group
from repro.core.switchable import ProtocolSpec
from repro.core.token_switch import TokenSwitchProtocol
from repro.errors import SwitchError
from repro.net.faults import FaultPlan
from repro.protocols.fifo import FifoLayer
from repro.protocols.reliable import ReliableLayer
from repro.protocols.sequencer import SequencerLayer
from repro.protocols.tokenring import TokenRingLayer


def specs_fifo():
    return [
        ProtocolSpec("A", lambda r: [FifoLayer()]),
        ProtocolSpec("B", lambda r: [FifoLayer()]),
    ]


def specs_order():
    return [
        ProtocolSpec("seq", lambda r: [SequencerLayer()]),
        ProtocolSpec("tok", lambda r: [TokenRingLayer()]),
    ]


@pytest.mark.parametrize("variant", ["token", "broadcast"])
class TestBothVariants:
    def test_switch_completes_at_every_member(self, variant):
        sim, stacks, log = switch_group(4, specs_fifo(), "A", variant)
        stacks[1].request_switch("B")
        sim.run_until(1.0)
        assert all(s.current_protocol == "B" for s in stacks.values())
        assert all(not s.switching for s in stacks.values())

    def test_old_before_new_invariant(self, variant):
        sim, stacks, log = switch_group(4, specs_fifo(), "A", variant)
        for i in range(8):
            sim.schedule_at(0.001 * (i + 1), lambda i=i: stacks[i % 4].cast(("old", i), 16))
        sim.schedule_at(0.005, lambda: stacks[0].request_switch("B"))
        for i in range(8):
            sim.schedule_at(0.02 + 0.001 * i, lambda i=i: stacks[i % 4].cast(("new", i), 16))
        sim.run_until(1.0)
        for rank in range(4):
            bodies = log.bodies(rank)
            assert len(bodies) == 16
            epochs = [b[0] for b in bodies]
            assert epochs == ["old"] * 8 + ["new"] * 8

    def test_sends_never_blocked_during_switch(self, variant):
        sim, stacks, log = switch_group(4, specs_fifo(), "A", variant)
        stacks[0].request_switch("B")
        assert all(s.can_send() for s in stacks.values())
        sim.run_until(0.003)
        # mid-switch (some members are switching): still sendable
        assert all(s.can_send() for s in stacks.values())
        sim.run_until(1.0)

    def test_switch_completes_under_loss_with_reliable_slots(self, variant):
        """Section 2's liveness assumption: if the subordinate protocols
        deliver exactly once (our reliable layer over a lossy network),
        switches complete — control channel and data drain both survive
        15% loss."""
        specs = [
            ProtocolSpec("relA", lambda r: [ReliableLayer()]),
            ProtocolSpec("relB", lambda r: [ReliableLayer()]),
        ]
        sim, stacks, log = switch_group(
            4, specs, "relA", variant,
            faults=FaultPlan(loss_rate=0.15), seed=21,
        )
        sim.schedule_at(0.01, lambda: stacks[2].request_switch("relB"))
        for i in range(10):
            sim.schedule_at(
                0.002 * (i + 1), lambda i=i: stacks[i % 4].cast(i, 16)
            )
        sim.run_until(20.0)
        assert all(s.current_protocol == "relB" for s in stacks.values())
        for rank in range(4):
            assert sorted(log.bodies(rank)) == list(range(10))

    def test_total_order_preserved_across_switch(self, variant):
        sim, stacks, log = switch_group(5, specs_order(), "seq", variant)
        for i in range(20):
            sim.schedule_at(0.003 * (i + 1), lambda i=i: stacks[i % 5].cast(i, 64))
        sim.schedule_at(0.030, lambda: stacks[3].request_switch("tok"))
        sim.run_until(2.0)
        assert log.all_agree()
        assert len(log.bodies(0)) == 20

    def test_switch_back_and_forth(self, variant):
        sim, stacks, log = switch_group(3, specs_order(), "seq", variant)
        def cast_burst(t0):
            for i in range(6):
                sim.schedule_at(t0 + 0.002 * i, lambda i=i, t0=t0: stacks[i % 3].cast((t0, i), 64))
        cast_burst(0.001)
        sim.schedule_at(0.02, lambda: stacks[0].request_switch("tok"))
        cast_burst(0.1)
        sim.schedule_at(0.2, lambda: stacks[0].request_switch("seq"))
        cast_burst(0.3)
        sim.run_until(2.0)
        assert all(s.current_protocol == "seq" for s in stacks.values())
        assert log.all_agree()
        assert len(log.bodies(0)) == 18

    def test_global_completion_callback(self, variant):
        sim, stacks, log = switch_group(4, specs_fifo(), "A", variant)
        completions = []
        stacks[2].protocol.on_global_complete(
            lambda sid, duration: completions.append((sid, duration))
        )
        stacks[2].request_switch("B")
        sim.run_until(1.0)
        assert len(completions) == 1
        switch_id, duration = completions[0]
        assert switch_id[0] == 2  # initiated by rank 2
        assert duration > 0


@pytest.mark.parametrize("variant", ["token", "broadcast"])
def test_completion_callbacks_bounded_across_repeated_switches(variant):
    """Regression: the SP variants register per-switch DONE notifications
    on the core; a long adaptive run must not accumulate one callback per
    switch (and pay O(total switches) on every completion)."""
    sim, stacks, log = switch_group(3, specs_fifo(), "A", variant)
    target = "B"
    for i in range(10):
        sim.schedule_at(
            0.5 * (i + 1),
            lambda t=target: stacks[0].request_switch(t),
        )
        target = "A" if target == "B" else "B"
    sim.run_until(8.0)
    assert all(s.core.switches_completed == 10 for s in stacks.values())
    for stack in stacks.values():
        assert stack.core.completion_callback_count <= 2
        assert len(stack.core._completion_callbacks) <= 2


class TestTokenVariantSpecifics:
    def test_concurrent_requests_are_serialized(self):
        """Two members want to switch at once: the NORMAL token serializes
        them — the paper's 'bonus' of the token design."""
        specs = [
            ProtocolSpec("A", lambda r: [FifoLayer()]),
            ProtocolSpec("B", lambda r: [FifoLayer()]),
            ProtocolSpec("C", lambda r: [FifoLayer()]),
        ]
        sim, stacks, log = switch_group(4, specs, "A", "token")
        stacks[1].request_switch("B")
        stacks[2].request_switch("C")
        sim.run_until(2.0)
        # Both eventually served; the final protocol is C (B first or C
        # first, then the other's stale/valid request resolves).
        finals = {s.current_protocol for s in stacks.values()}
        assert len(finals) == 1
        assert finals.pop() in ("B", "C")
        total = sum(s.core.switches_completed for s in stacks.values())
        assert total % 4 == 0 and total > 0

    def test_request_for_current_protocol_is_cancelled(self):
        sim, stacks, log = switch_group(3, specs_fifo(), "A", "token")
        stacks[0].request_switch("A")
        sim.run_until(0.5)
        assert stacks[0].core.switches_completed == 0
        assert stacks[0].protocol.pending_request is None

    def test_unknown_target_rejected(self):
        sim, stacks, log = switch_group(3, specs_fifo(), "A", "token")
        with pytest.raises(SwitchError):
            stacks[0].request_switch("nope")

    def test_normal_token_is_paced(self):
        sim, stacks, log = switch_group(
            3, specs_fifo(), "A", "token", token_interval=0.05
        )
        sim.run_until(1.0)
        # ~20 paced hops per second spread over 3 members.
        tokens = sum(
            s.protocol.stats.get("normal_tokens") for s in stacks.values()
        )
        assert 10 <= tokens <= 30

    def test_three_rotations_per_switch(self):
        sim, stacks, log = switch_group(3, specs_fifo(), "A", "token")
        stacks[0].request_switch("B")
        sim.run_until(1.0)
        initiator = stacks[0].protocol
        assert initiator.stats.get("initiated") == 1
        assert initiator.stats.get("vector_built") == 1
        assert initiator.stats.get("globally_complete") == 1
        # Non-initiators each prepared exactly once.
        for rank in (1, 2):
            assert stacks[rank].protocol.stats.get("prepared") == 1


class TestBroadcastVariantSpecifics:
    def test_overlapping_initiations_rejected(self):
        sim, stacks, log = switch_group(3, specs_fifo(), "A", "broadcast")
        stacks[0].request_switch("B")
        with pytest.raises(SwitchError):
            stacks[0].request_switch("B")

    def test_switch_to_current_rejected(self):
        sim, stacks, log = switch_group(3, specs_fifo(), "A", "broadcast")
        with pytest.raises(SwitchError):
            stacks[0].request_switch("A")

    def test_switch_duration_recorded(self):
        sim, stacks, log = switch_group(3, specs_fifo(), "A", "broadcast")
        stacks[1].request_switch("B")
        sim.run_until(1.0)
        assert stacks[1].protocol.last_switch_duration is not None
        assert stacks[1].protocol.last_switch_duration > 0

    def test_duplicate_ok_does_not_rebroadcast_switch(self):
        """Regression: a late/retransmitted OK arriving after the member
        set is complete must not re-send the SWITCH vector."""
        sim, stacks, log = switch_group(3, specs_fifo(), "A", "broadcast")
        manager = stacks[0].protocol
        stacks[0].request_switch("B")
        # Run just past the point where the manager sent the vector but
        # the switch has not globally completed yet.
        while manager.stats.get("vector_sent") == 0:
            assert sim.step(), "switch never reached the vector broadcast"
        switch_id = manager._managing
        assert switch_id is not None
        # A retransmitted copy of member 1's OK arrives on the control
        # channel.
        duplicate = manager.ctx.make_message(
            ("ok", switch_id, 1, manager._ok_counts[1]), 32, dest=(0,)
        )
        manager.control_receive(duplicate)
        assert manager.stats.get("vector_sent") == 1
        assert manager.stats.get("duplicate_oks") == 1
        sim.run_until(1.0)
        assert all(s.current_protocol == "B" for s in stacks.values())
        assert manager.stats.get("globally_complete") == 1
