"""Unit tests for oracle inputs (ActivityMonitor) and the adaptive
controller."""

import pytest

from helpers import switch_group
from repro.core.hybrid import AdaptiveController
from repro.core.oracle import ManualOracle, ScheduledOracle
from repro.core.stats import ActivityMonitor, RateMonitor
from repro.core.switchable import ProtocolSpec
from repro.errors import SwitchError
from repro.protocols.fifo import FifoLayer
from repro.sim.engine import Simulator
from repro.stack.message import Message


def make_msg(sender):
    return Message(sender=sender, mid=(sender, 0), body="x", body_size=1)


class TestActivityMonitor:
    def test_counts_distinct_senders_in_window(self):
        sim = Simulator()
        monitor = ActivityMonitor(sim, window=1.0)
        monitor.observe(make_msg(1))
        monitor.observe(make_msg(2))
        monitor.observe(make_msg(1))
        assert monitor.active_senders() == 2

    def test_window_expiry(self):
        sim = Simulator()
        monitor = ActivityMonitor(sim, window=0.5)
        monitor.observe(make_msg(1))
        sim.run_until(1.0)
        monitor.observe(make_msg(2))
        assert monitor.active_senders() == 1

    def test_delivery_rate(self):
        sim = Simulator()
        monitor = ActivityMonitor(sim, window=2.0)
        for __ in range(10):
            monitor.observe(make_msg(1))
        assert monitor.delivery_rate() == pytest.approx(5.0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            ActivityMonitor(Simulator(), window=0)


class TestRateMonitor:
    def test_rate_converges(self):
        sim = Simulator()
        monitor = RateMonitor(sim, window=0.1, alpha=1.0)
        for i in range(20):
            sim.run_until(i * 0.05)
            monitor.observe(make_msg(0))
        assert monitor.rate == pytest.approx(20.0, rel=0.5)

    def test_no_observations_no_rate(self):
        assert RateMonitor(Simulator()).rate is None

    def test_no_observations_no_rate_even_after_idle_time(self):
        sim = Simulator()
        monitor = RateMonitor(sim, window=0.1)
        sim.run_until(10.0)
        assert monitor.rate is None

    def test_rate_decays_while_idle(self):
        sim = Simulator()
        monitor = RateMonitor(sim, window=0.1, alpha=0.5)
        for i in range(20):
            sim.run_until(i * 0.05)
            monitor.observe(make_msg(0))
        busy = monitor.rate
        assert busy == pytest.approx(20.0, rel=0.5)
        # Deliveries stop; the smoothed rate must fall at read time, not
        # stay frozen at the burst value until the next delivery.
        sim.run_until(2.0)
        idle = monitor.rate
        assert idle is not None and idle < busy / 100.0
        sim.run_until(60.0)
        assert monitor.rate == pytest.approx(0.0, abs=1e-6)

    def test_idle_decay_is_closed_form_per_window(self):
        sim = Simulator()
        monitor = RateMonitor(sim, window=0.1, alpha=0.5)
        monitor.observe(make_msg(0))
        # One full busy window (10/s), then exactly three empty windows.
        sim.run_until(0.4)
        expected = 10.0 * (1 - 0.5) ** 3
        assert monitor.rate == pytest.approx(expected)


def specs():
    return [
        ProtocolSpec("A", lambda r: [FifoLayer()]),
        ProtocolSpec("B", lambda r: [FifoLayer()]),
    ]


class TestAdaptiveController:
    def test_scheduled_upgrade_executes(self):
        sim, stacks, log = switch_group(3, specs(), "A", "token")
        oracle = ScheduledOracle([(0.1, "B")])
        controller = AdaptiveController(stacks[0], oracle, poll_interval=0.02)
        controller.start()
        sim.run_until(1.0)
        assert all(s.current_protocol == "B" for s in stacks.values())
        assert controller.switch_request_count == 1
        decision = controller.decisions[0]
        assert (decision.from_protocol, decision.to_protocol) == ("A", "B")

    def test_manual_escalation(self):
        sim, stacks, log = switch_group(3, specs(), "A", "token")
        oracle = ManualOracle()
        controller = AdaptiveController(stacks[1], oracle, poll_interval=0.01)
        controller.start()
        sim.schedule_at(0.05, lambda: oracle.escalate("B"))
        sim.run_until(1.0)
        assert all(s.current_protocol == "B" for s in stacks.values())

    def test_stop_halts_polling(self):
        sim, stacks, log = switch_group(3, specs(), "A", "token")
        oracle = ScheduledOracle([(0.5, "B")])
        controller = AdaptiveController(stacks[0], oracle, poll_interval=0.02)
        controller.start()
        sim.run_until(0.1)
        controller.stop()
        sim.run_until(2.0)
        assert all(s.current_protocol == "A" for s in stacks.values())

    def test_start_is_idempotent(self):
        sim, stacks, log = switch_group(3, specs(), "A", "token")
        controller = AdaptiveController(
            stacks[0], ManualOracle(), poll_interval=0.05
        )
        controller.start()
        controller.start()
        sim.run_until(0.3)
        # One polling chain, not two: at most ~6 polls' worth of events.

    def test_poll_interval_validation(self):
        sim, stacks, log = switch_group(3, specs(), "A", "token")
        with pytest.raises(SwitchError):
            AdaptiveController(stacks[0], ManualOracle(), poll_interval=0)

    def test_defer_while_switching(self):
        """Polls during an in-flight switch do not queue extra requests."""
        sim, stacks, log = switch_group(
            3, specs(), "A", "token", token_interval=0.05
        )
        oracle = ManualOracle()
        controller = AdaptiveController(stacks[0], oracle, poll_interval=0.005)
        controller.start()
        sim.schedule_at(0.01, lambda: oracle.escalate("B"))
        sim.schedule_at(0.012, lambda: oracle.escalate("B"))
        sim.run_until(2.0)
        assert controller.switch_request_count <= 2
        assert all(s.current_protocol == "B" for s in stacks.values())
