"""The blocking SP variant: a §8 exploration of "other switching
protocols that possibly can support different classes of properties".

Queueing application sends during the switch (instead of routing them to
the new protocol) additionally preserves *send-restriction* properties —
Amoeba being the paper's example — because nothing can be sent until the
old protocol has fully drained.  The price is exactly the blocking the
paper's SP was designed to avoid."""

import pytest

from helpers import switch_group
from repro.core.switchable import ProtocolSpec, build_switch_group
from repro.net.ptp import LatencyMatrix, PointToPointNetwork
from repro.protocols.amoeba import AmoebaLayer
from repro.protocols.fifo import FifoLayer
from repro.protocols.tokenring import TokenRingLayer
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.stack.membership import Group
from repro.traces.properties import Amoeba
from repro.traces.recorder import TraceRecorder


def blocking_group(n=4, specs=None, seed=81, latency=None):
    sim = Simulator()
    net = PointToPointNetwork(sim, n, latency=latency, rng=RandomStreams(seed))
    group = Group.of_size(n)
    specs = specs or [
        ProtocolSpec("A", lambda r: [FifoLayer()]),
        ProtocolSpec("B", lambda r: [FifoLayer()]),
    ]
    stacks = build_switch_group(
        sim, net, group, specs, initial=specs[0].name, variant="broadcast",
        block_sends_during_switch=True,
    )
    return sim, stacks


def test_sends_blocked_and_released():
    sim, stacks = blocking_group()
    got = []
    stacks[1].on_deliver(lambda m: got.append(m.body))
    stacks[0].request_switch("B")
    sim.run_until(0.0005)  # mid-switch at rank 0
    assert stacks[0].switching
    assert not stacks[0].can_send()
    stacks[0].cast("queued-mid-switch", 16)
    assert stacks[0].core.stats.get("sends_blocked") == 1
    sim.run_until(2.0)
    assert stacks[0].current_protocol == "B"
    assert got == ["queued-mid-switch"]  # released after the switch


def test_blocked_sends_preserve_submission_order():
    sim, stacks = blocking_group()
    got = []
    stacks[1].on_deliver(lambda m: got.append(m.body))
    stacks[0].cast("before", 16)
    stacks[0].request_switch("B")
    sim.run_until(0.0005)
    for i in range(3):
        stacks[0].cast(f"mid-{i}", 16)
    sim.run_until(2.0)
    assert got == ["before", "mid-0", "mid-1", "mid-2"]


def test_blocking_sp_preserves_amoeba():
    """The headline: the same scenario that violates Amoeba under the
    paper's SP holds under the blocking variant (the switch cannot
    complete before the outstanding message drains)."""
    specs = [
        ProtocolSpec("amA", lambda r: [AmoebaLayer(), TokenRingLayer()]),
        ProtocolSpec("amB", lambda r: [AmoebaLayer()]),
    ]
    latency = LatencyMatrix(4, base_latency=3e-3)
    sim, stacks = blocking_group(specs=specs, latency=latency)
    recorder = TraceRecorder(sim)
    for stack in stacks.values():
        recorder.attach(stack)

    sent_second = []

    def try_second_send():
        if sent_second:
            return
        if stacks[1].can_send():
            stacks[1].cast("second", 64)
            sent_second.append(True)
            return
        sim.schedule(0.001, try_second_send)

    sim.schedule_at(0.004, lambda: stacks[1].cast("first", 64))
    sim.schedule_at(0.005, lambda: stacks[0].request_switch("amB"))
    sim.schedule_at(0.006, try_second_send)
    sim.run_until(2.0)

    assert sent_second, "the application did eventually send again"
    assert all(s.current_protocol == "amB" for s in stacks.values())
    assert Amoeba().holds(recorder.trace()), (
        "blocking SP must preserve the Amoeba send restriction"
    )


def test_nonblocking_default_unchanged():
    sim, stacks, log = switch_group(
        3,
        [
            ProtocolSpec("A", lambda r: [FifoLayer()]),
            ProtocolSpec("B", lambda r: [FifoLayer()]),
        ],
        "A",
        "broadcast",
    )
    stacks[0].request_switch("B")
    sim.run_until(0.0005)
    assert stacks[0].switching
    assert stacks[0].can_send()  # the paper's SP: never blocked
    stacks[0].cast("flows-immediately", 16)
    assert stacks[0].core.stats.get("sends_blocked") == 0
    sim.run_until(1.0)
