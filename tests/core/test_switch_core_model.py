"""Model-based (stateful) testing of the SP state machine.

A hypothesis rule-based state machine drives :class:`SwitchCore` through
random interleavings of sends, slot deliveries, switch choreography and
vector installs, checking it against a tiny reference model:

* every application send reaches exactly one slot, in order;
* a delivery reaches the application iff its slot is current (or was
  drained into currency), old-before-new per switch;
* counts are exact; buffers drain to empty on completion.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core.base import ProtocolSlot, SwitchCore, SwitchMode
from repro.stack.message import Message

SLOTS = ("a", "b")
MEMBERS = (0, 1, 2)


class SwitchCoreModel(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.slot_outbox = {name: [] for name in SLOTS}
        self.app_inbox = []
        self.core = SwitchCore(
            {
                name: ProtocolSlot(
                    name, [], lambda m, name=name: self.slot_outbox[name].append(m)
                )
                for name in SLOTS
            },
            self.app_inbox.append,
            initial="a",
        )
        self._mid_seq = 0
        # Reference model state:
        self.sent_counts = {name: 0 for name in SLOTS}
        self.pending_from = {
            name: {m: 0 for m in MEMBERS} for name in SLOTS
        }  # deliveries fed in per slot/member
        self.delivered_to_app = 0

    def _fresh_msg(self, sender):
        self._mid_seq += 1
        return Message(
            sender=sender, mid=(sender, self._mid_seq), body=None, body_size=1
        )

    # ------------------------------------------------------------------
    @rule(sender=st.sampled_from(MEMBERS))
    def app_send(self, sender):
        before = {name: len(self.slot_outbox[name]) for name in SLOTS}
        target = self.core.send_slot
        self.core.app_send(self._fresh_msg(sender))
        self.sent_counts[target] += 1
        # Exactly one slot got exactly one message, and it was send_slot.
        for name in SLOTS:
            expected = before[name] + (1 if name == target else 0)
            assert len(self.slot_outbox[name]) == expected

    @rule(slot=st.sampled_from(SLOTS), sender=st.sampled_from(MEMBERS))
    def slot_delivery(self, slot, sender):
        before_app = len(self.app_inbox)
        self.core.slot_deliver(slot, self._fresh_msg(sender))
        self.pending_from[slot][sender] += 1
        immediate = (
            (self.core.mode is SwitchMode.NORMAL and slot == self.core.current)
            or (self.core.mode is SwitchMode.SWITCHING and slot == self.core.old)
        )
        # Completion inside slot_deliver may flush buffered messages too,
        # so "immediate" is a lower bound only when no switch finished.
        if immediate:
            assert len(self.app_inbox) >= before_app + 1

    @precondition(lambda self: self.core.mode is SwitchMode.NORMAL)
    @rule()
    def begin_switch(self):
        old = self.core.current
        new = "b" if old == "a" else "a"
        count = self.core.begin_switch(old, new)
        assert count == self.sent_counts[old]

    @precondition(
        lambda self: self.core.mode is SwitchMode.SWITCHING
        and self.core.vector is None
    )
    @rule(slack=st.integers(0, 2))
    def install_vector(self, slack):
        # A vector consistent with what we already fed the old slot plus
        # possibly a little more still "in flight".
        old = self.core.old
        vector = {
            member: self.core.delivered[old].get(member, 0)
            + (slack if member == 1 else 0)
            for member in MEMBERS
        }
        self.core.set_vector(vector)

    @precondition(
        lambda self: self.core.mode is SwitchMode.SWITCHING
        and self.core.vector is not None
    )
    @rule(sender=st.sampled_from(MEMBERS))
    def drain_delivery(self, sender):
        old = self.core.old  # the delivery may complete the switch
        self.core.slot_deliver(old, self._fresh_msg(sender))
        self.pending_from[old][sender] += 1

    # ------------------------------------------------------------------
    @invariant()
    def send_slot_is_new_during_switch(self):
        if self.core.mode is SwitchMode.SWITCHING:
            assert self.core.send_slot == self.core.new
        else:
            assert self.core.send_slot == self.core.current

    @invariant()
    def app_sees_no_more_than_fed(self):
        fed = sum(sum(per.values()) for per in self.pending_from.values())
        assert len(self.app_inbox) <= fed

    @invariant()
    def buffer_empty_in_normal_mode_for_current(self):
        # Buffered entries in NORMAL mode can only belong to non-current
        # slots (early traffic).
        if self.core.mode is SwitchMode.NORMAL:
            assert all(
                name != self.core.current for name, __ in self.core._buffer
            )

    @invariant()
    def counts_match_app_inbox(self):
        delivered = sum(
            sum(per.values()) for per in self.core.delivered.values()
        )
        assert delivered == len(self.app_inbox)


TestSwitchCoreModel = SwitchCoreModel.TestCase
TestSwitchCoreModel.settings = __import__("hypothesis").settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
