"""Unit tests for the view-based switching extension (section 8)."""

from repro.core.switchable import ProtocolSpec
from repro.core.view_switch import ViewSwitchStack
from repro.net.ptp import PointToPointNetwork
from repro.protocols.fifo import FifoLayer
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.stack.membership import Group, View
from repro.traces.properties import VirtualSynchrony
from repro.traces.recorder import TraceRecorder


def build(n=3, variant="broadcast"):
    sim = Simulator()
    net = PointToPointNetwork(sim, n, rng=RandomStreams(19))
    group = Group.of_size(n)
    specs = [
        ProtocolSpec("A", lambda r: [FifoLayer()]),
        ProtocolSpec("B", lambda r: [FifoLayer()]),
    ]
    stacks = {
        rank: ViewSwitchStack(
            sim, net, group, rank, specs, initial="A", variant=variant,
            streams=RandomStreams(19).fork(f"r{rank}"),
        )
        for rank in group
    }
    logs = {r: [] for r in group}
    for rank, stack in stacks.items():
        stack.on_deliver(lambda m, rank=rank: logs[rank].append(m.body))
    return sim, stacks, logs


def views_of(log):
    return [b.view_id for b in log if isinstance(b, View)]


def test_initial_view_delivered():
    sim, stacks, logs = build()
    sim.run_until(0.1)
    for rank in range(3):
        assert views_of(logs[rank]) == [0]


def test_switch_delivers_next_view():
    sim, stacks, logs = build()
    sim.schedule_at(0.01, lambda: stacks[0].request_switch("B"))
    sim.run_until(1.0)
    for rank in range(3):
        assert views_of(logs[rank]) == [0, 1]
    assert stacks[0].current_view_id == 1


def test_view_sits_exactly_between_epochs():
    sim, stacks, logs = build()
    for i in range(4):
        sim.schedule_at(0.001 * (i + 1), lambda i=i: stacks[i % 3].cast(("old", i), 16))
    sim.schedule_at(0.01, lambda: stacks[0].request_switch("B"))
    for i in range(4):
        sim.schedule_at(0.05 + 0.001 * i, lambda i=i: stacks[i % 3].cast(("new", i), 16))
    sim.run_until(1.0)
    for rank in range(3):
        kinds = [
            "view" if isinstance(b, View) else b[0] for b in logs[rank]
        ]
        assert kinds == ["view"] + ["old"] * 4 + ["view"] + ["new"] * 4


def test_vs_property_holds_on_recorded_trace():
    sim = Simulator()
    net = PointToPointNetwork(sim, 3, rng=RandomStreams(23))
    group = Group.of_size(3)
    specs = [
        ProtocolSpec("A", lambda r: [FifoLayer()]),
        ProtocolSpec("B", lambda r: [FifoLayer()]),
    ]
    stacks = {
        rank: ViewSwitchStack(sim, net, group, rank, specs, initial="A",
                              variant="broadcast")
        for rank in group
    }
    recorder = TraceRecorder(sim)
    for stack in stacks.values():
        recorder.attach(stack)
    for i in range(6):
        sim.schedule_at(0.002 * (i + 1), lambda i=i: stacks[i % 3].cast(i, 16))
    sim.schedule_at(0.02, lambda: stacks[1].request_switch("B"))
    sim.run_until(1.0)
    assert VirtualSynchrony().holds(recorder.trace())


def test_multiple_switches_increment_views():
    sim, stacks, logs = build()
    sim.schedule_at(0.01, lambda: stacks[0].request_switch("B"))
    sim.schedule_at(0.2, lambda: stacks[0].request_switch("A"))
    sim.run_until(1.0)
    for rank in range(3):
        assert views_of(logs[rank]) == [0, 1, 2]
