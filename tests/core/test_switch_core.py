"""Unit tests for the SP state machine (SwitchCore)."""

import pytest

from repro.core.base import ProtocolSlot, SwitchCore, SwitchMode
from repro.errors import SwitchError
from repro.stack.message import Message


def make_msg(sender, seq, body="x"):
    return Message(sender=sender, mid=(sender, seq), body=body, body_size=1)


def make_core(initial="a", slots=("a", "b")):
    sent = {name: [] for name in slots}
    delivered = []
    core = SwitchCore(
        {
            name: ProtocolSlot(name, [], lambda m, name=name: sent[name].append(m))
            for name in slots
        },
        delivered.append,
        initial,
    )
    return core, sent, delivered


class TestConstruction:
    def test_initial_must_be_a_slot(self):
        with pytest.raises(SwitchError):
            make_core(initial="zzz")

    def test_needs_two_slots(self):
        with pytest.raises(SwitchError):
            make_core(slots=("only",))


class TestNormalMode:
    def test_sends_go_to_current(self):
        core, sent, delivered = make_core()
        core.app_send(make_msg(0, 0))
        assert len(sent["a"]) == 1
        assert core.sent["a"] == 1

    def test_current_deliveries_pass_up(self):
        core, sent, delivered = make_core()
        core.slot_deliver("a", make_msg(1, 0))
        assert len(delivered) == 1
        assert core.delivered["a"][1] == 1

    def test_early_traffic_from_other_slot_buffered(self):
        core, sent, delivered = make_core()
        core.slot_deliver("b", make_msg(1, 0))
        assert delivered == []
        assert core.buffered_count == 1

    def test_unknown_slot_rejected(self):
        core, sent, delivered = make_core()
        with pytest.raises(SwitchError):
            core.slot_deliver("nope", make_msg(0, 0))


class TestSwitching:
    def test_begin_switch_reports_sent_count(self):
        core, sent, delivered = make_core()
        for i in range(3):
            core.app_send(make_msg(0, i))
        assert core.begin_switch("a", "b") == 3
        assert core.mode is SwitchMode.SWITCHING

    def test_sends_go_to_new_during_switch(self):
        core, sent, delivered = make_core()
        core.begin_switch("a", "b")
        core.app_send(make_msg(0, 0))
        assert len(sent["b"]) == 1
        assert sent["a"] == []

    def test_new_protocol_deliveries_buffered(self):
        core, sent, delivered = make_core()
        core.begin_switch("a", "b")
        core.slot_deliver("b", make_msg(1, 0))
        assert delivered == []

    def test_old_protocol_deliveries_continue(self):
        core, sent, delivered = make_core()
        core.begin_switch("a", "b")
        core.slot_deliver("a", make_msg(1, 0))
        assert len(delivered) == 1

    def test_drain_completes_switch(self):
        core, sent, delivered = make_core()
        core.slot_deliver("a", make_msg(1, 0))  # one old delivery already
        core.begin_switch("a", "b")
        core.slot_deliver("b", make_msg(2, 0))  # buffered
        core.set_vector({1: 2, 2: 0})
        assert core.switching  # still owed one from member 1
        core.slot_deliver("a", make_msg(1, 1))
        assert not core.switching
        assert core.current == "b"
        # buffered new-protocol message flushed after the old drained
        assert [m.mid for m in delivered] == [(1, 0), (1, 1), (2, 0)]

    def test_vector_satisfied_immediately(self):
        core, sent, delivered = make_core()
        core.begin_switch("a", "b")
        core.set_vector({0: 0, 1: 0})
        assert not core.switching
        assert core.switches_completed == 1

    def test_early_buffer_flushed_on_finish(self):
        core, sent, delivered = make_core()
        core.slot_deliver("b", make_msg(1, 5))  # early, buffered
        core.begin_switch("a", "b")
        core.set_vector({})
        assert [m.mid for m in delivered] == [(1, 5)]

    def test_completion_callback(self):
        core, sent, delivered = make_core()
        seen = []
        core.on_switch_complete(lambda old, new: seen.append((old, new)))
        core.begin_switch("a", "b")
        core.set_vector({})
        assert seen == [("a", "b")]

    def test_once_completion_callback_fires_once_and_deregisters(self):
        core, sent, delivered = make_core()
        seen = []
        core.on_switch_complete(lambda old, new: seen.append((old, new)), once=True)
        core.begin_switch("a", "b")
        core.set_vector({})
        core.begin_switch("b", "a")
        core.set_vector({})
        assert seen == [("a", "b")]
        assert core.completion_callback_count == 0

    def test_completion_callback_unsubscribe(self):
        core, sent, delivered = make_core()
        seen = []
        unsubscribe = core.on_switch_complete(
            lambda old, new: seen.append((old, new))
        )
        unsubscribe()
        unsubscribe()  # idempotent
        core.begin_switch("a", "b")
        core.set_vector({})
        assert seen == []
        assert core.completion_callback_count == 0

    def test_completion_callbacks_bounded_across_many_switches(self):
        # Regression: one once-registration per switch must not accumulate.
        core, sent, delivered = make_core()
        for i in range(50):
            old, new = ("a", "b") if i % 2 == 0 else ("b", "a")
            core.on_switch_complete(lambda o, n: None, once=True)
            core.begin_switch(old, new)
            core.set_vector({})
        assert core.switches_completed == 50
        assert core.completion_callback_count == 0
        assert len(core._completion_callbacks) == 0

    def test_boundary_callback_fires_before_flush(self):
        core, sent, delivered = make_core()
        core.slot_deliver("b", make_msg(1, 0))
        order = []
        core.on_epoch_boundary(lambda old, new: order.append("boundary"))

        def track(msg):
            order.append(msg.mid)

        core._app_deliver = track
        core.begin_switch("a", "b")
        core.set_vector({})
        assert order == ["boundary", (1, 0)]


class TestSwitchValidation:
    def test_cannot_overlap_switches(self):
        core, sent, delivered = make_core()
        core.begin_switch("a", "b")
        with pytest.raises(SwitchError):
            core.begin_switch("a", "b")

    def test_old_must_be_current(self):
        core, sent, delivered = make_core()
        with pytest.raises(SwitchError):
            core.begin_switch("b", "a")

    def test_same_slot_rejected(self):
        core, sent, delivered = make_core()
        with pytest.raises(SwitchError):
            core.begin_switch("a", "a")

    def test_unknown_slots_rejected(self):
        core, sent, delivered = make_core()
        with pytest.raises(SwitchError):
            core.begin_switch("a", "zzz")

    def test_vector_outside_switch_rejected(self):
        core, sent, delivered = make_core()
        with pytest.raises(SwitchError):
            core.set_vector({})


class TestMultipleSwitches:
    def test_counts_are_cumulative_across_epochs(self):
        core, sent, delivered = make_core()
        core.app_send(make_msg(0, 0))
        core.slot_deliver("a", make_msg(0, 0))
        # a -> b
        core.begin_switch("a", "b")
        core.set_vector({0: 1})
        core.app_send(make_msg(0, 1))
        core.slot_deliver("b", make_msg(0, 1))
        # b -> a: and back again
        core.begin_switch("b", "a")
        core.set_vector({0: 1})
        assert core.current == "a"
        core.app_send(make_msg(0, 2))
        assert core.sent["a"] == 2  # cumulative
        # a -> b again: vector uses the cumulative count
        core.slot_deliver("a", make_msg(0, 2))
        core.begin_switch("a", "b")
        core.set_vector({0: 2})
        assert not core.switching

    def test_three_slots_round_trip(self):
        core, sent, delivered = make_core(slots=("a", "b", "c"))
        # early traffic for c while on a
        core.slot_deliver("c", make_msg(1, 0))
        core.begin_switch("a", "b")
        core.set_vector({})
        assert core.current == "b"
        assert core.buffered_count == 1  # c traffic still waiting
        core.begin_switch("b", "c")
        core.set_vector({})
        assert core.current == "c"
        assert [m.mid for m in delivered] == [(1, 0)]
