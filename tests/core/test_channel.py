"""Unit tests for the point-to-point specialization (§1)."""

import pytest

from repro.core.channel import SwitchableChannel
from repro.core.switchable import ProtocolSpec
from repro.errors import SwitchError
from repro.net.faults import FaultPlan
from repro.net.ptp import PointToPointNetwork
from repro.protocols.fifo import FifoLayer
from repro.protocols.reliable import ReliableLayer
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def specs():
    return [
        ProtocolSpec("v1", lambda r: [FifoLayer()]),
        ProtocolSpec("v2", lambda r: [ReliableLayer()]),
    ]


def make_channel(faults=None, variant="broadcast", seed=51):
    sim = Simulator()
    net = PointToPointNetwork(sim, 2, faults=faults, rng=RandomStreams(seed))
    channel = SwitchableChannel(
        sim, net, 0, 1, specs(), initial="v1", variant=variant,
        streams=RandomStreams(seed),
    )
    return sim, channel


def test_bidirectional_delivery():
    sim, channel = make_channel()
    alice, bob = channel
    alice_got, bob_got = [], []
    alice.on_receive(alice_got.append)
    bob.on_receive(bob_got.append)
    alice.send("hi bob")
    bob.send("hi alice")
    sim.run_until(1.0)
    assert bob_got == ["hi bob"]
    assert alice_got == ["hi alice"]


def test_no_self_delivery():
    sim, channel = make_channel()
    alice, __ = channel
    got = []
    alice.on_receive(got.append)
    alice.send("to bob only")
    sim.run_until(1.0)
    assert got == []


def test_switch_preserves_order_across_directions():
    sim, channel = make_channel()
    alice, bob = channel
    bob_got = []
    bob.on_receive(bob_got.append)
    for i in range(3):
        sim.schedule_at(0.002 * (i + 1), lambda i=i: alice.send(("old", i)))
    sim.schedule_at(0.01, lambda: alice.request_switch("v2"))
    for i in range(3):
        sim.schedule_at(0.05 + 0.002 * i, lambda i=i: alice.send(("new", i)))
    sim.run_until(2.0)
    assert bob_got == [("old", 0), ("old", 1), ("old", 2),
                       ("new", 0), ("new", 1), ("new", 2)]
    assert alice.current_protocol == "v2"
    assert bob.current_protocol == "v2"


def test_either_end_may_initiate():
    sim, channel = make_channel(variant="token")
    alice, bob = channel
    bob.request_switch("v2")
    sim.run_until(2.0)
    assert alice.current_protocol == "v2"


def test_channel_over_lossy_link():
    sim, channel = make_channel(faults=FaultPlan(loss_rate=0.2), seed=52)
    alice, bob = channel
    bob_got = []
    bob.on_receive(bob_got.append)
    sim.schedule_at(0.01, lambda: alice.request_switch("v2"))
    # v2 (reliable) carries the post-switch traffic across loss.
    for i in range(10):
        sim.schedule_at(0.2 + 0.01 * i, lambda i=i: alice.send(i))
    sim.run_until(20.0)
    assert alice.current_protocol == "v2"
    assert sorted(bob_got) == list(range(10))


def test_same_endpoint_rejected():
    sim = Simulator()
    net = PointToPointNetwork(sim, 2)
    with pytest.raises(SwitchError):
        SwitchableChannel(sim, net, 1, 1, specs(), initial="v1")


def test_ranks_and_peers():
    sim, channel = make_channel()
    alice, bob = channel
    assert alice.rank == 0 and alice.peer == 1
    assert bob.rank == 1 and bob.peer == 0
    assert alice.can_send()
    assert not alice.switching
