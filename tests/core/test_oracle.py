"""Unit tests for switching oracles."""

import pytest

from repro.core.oracle import (
    HysteresisOracle,
    ManualOracle,
    ScheduledOracle,
    ThresholdOracle,
)
from repro.errors import SwitchError


class TestThresholdOracle:
    def make(self, values):
        it = iter(values)
        return ThresholdOracle(lambda: next(it), 5.0, "low", "high")

    def test_above_threshold_selects_high(self):
        oracle = self.make([7.0])
        assert oracle.decide(0.0, "low") == "high"

    def test_below_threshold_selects_low(self):
        oracle = self.make([3.0])
        assert oracle.decide(0.0, "high") == "low"

    def test_no_change_returns_none(self):
        oracle = self.make([7.0])
        assert oracle.decide(0.0, "high") is None

    def test_exact_threshold_is_low(self):
        oracle = self.make([5.0])
        assert oracle.decide(0.0, "high") == "low"

    def test_oscillates_around_threshold(self):
        """The defect the paper calls out: values fluttering around the
        threshold flip the decision every poll."""
        values = [5.1, 4.9, 5.1, 4.9]
        it = iter(values)
        oracle = ThresholdOracle(lambda: next(it), 5.0, "low", "high")
        current = "low"
        flips = 0
        for t in range(4):
            target = oracle.decide(float(t), current)
            if target:
                current = target
                flips += 1
        assert flips == 4


class TestHysteresisOracle:
    def test_band_inversion_rejected(self):
        with pytest.raises(SwitchError):
            HysteresisOracle(lambda: 0, 6.0, 4.0, "low", "high")

    def test_negative_dwell_rejected(self):
        with pytest.raises(SwitchError):
            HysteresisOracle(lambda: 0, 1.0, 2.0, "low", "high", min_dwell=-1)

    def test_inside_band_no_switch(self):
        oracle = HysteresisOracle(lambda: 5.0, 4.5, 5.5, "low", "high")
        assert oracle.decide(0.0, "low") is None
        assert oracle.decide(0.0, "high") is None

    def test_fluttering_inside_band_never_switches(self):
        values = iter([4.9, 5.1, 4.9, 5.1, 5.4, 4.6])
        oracle = HysteresisOracle(lambda: next(values), 4.5, 5.5, "low", "high")
        assert all(
            oracle.decide(float(t), "low") is None for t in range(6)
        )

    def test_crossing_high_switches_up(self):
        oracle = HysteresisOracle(lambda: 6.0, 4.5, 5.5, "low", "high")
        assert oracle.decide(0.0, "low") == "high"

    def test_crossing_low_switches_down(self):
        oracle = HysteresisOracle(lambda: 3.0, 4.5, 5.5, "low", "high")
        assert oracle.decide(0.0, "high") == "low"

    def test_dwell_time_suppresses_rapid_flips(self):
        values = iter([6.0, 3.0, 3.0])
        oracle = HysteresisOracle(
            lambda: next(values), 4.5, 5.5, "low", "high", min_dwell=1.0
        )
        assert oracle.decide(0.0, "low") == "high"
        assert oracle.decide(0.5, "high") is None  # within dwell
        assert oracle.decide(1.5, "high") == "low"  # dwell elapsed


class TestScheduledOracle:
    def test_fires_at_time(self):
        oracle = ScheduledOracle([(5.0, "v2")])
        assert oracle.decide(4.9, "v1") is None
        assert oracle.decide(5.0, "v1") == "v2"
        assert oracle.remaining == 0

    def test_multiple_entries_in_order(self):
        oracle = ScheduledOracle([(2.0, "b"), (1.0, "a")])
        assert oracle.decide(1.5, "x") == "a"
        assert oracle.decide(2.5, "a") == "b"

    def test_skipped_polls_collapse_to_latest(self):
        oracle = ScheduledOracle([(1.0, "a"), (2.0, "b")])
        assert oracle.decide(10.0, "x") == "b"

    def test_no_op_when_already_current(self):
        oracle = ScheduledOracle([(1.0, "a")])
        assert oracle.decide(2.0, "a") is None


class TestManualOracle:
    def test_idle_until_escalated(self):
        oracle = ManualOracle()
        assert oracle.decide(0.0, "plain") is None

    def test_escalation_fires_once(self):
        oracle = ManualOracle()
        oracle.escalate("secure")
        assert oracle.decide(0.0, "plain") == "secure"
        assert oracle.decide(1.0, "plain") is None

    def test_escalation_to_current_is_noop(self):
        oracle = ManualOracle()
        oracle.escalate("secure")
        assert oracle.decide(0.0, "secure") is None


class TestRateMeter:
    def test_rate_over_one_window(self):
        from repro.core.oracle import RateMeter

        clock = iter([0.0, 2.0])
        count = iter([0.0, 10.0])
        meter = RateMeter(lambda: next(clock), lambda: next(count))
        assert meter() == pytest.approx(5.0)

    def test_same_instant_poll_does_not_swallow_counts(self):
        """Regression: two polls at the same instant (routine under
        SimRuntime, where many timers share one tick) must not advance
        the baselines — the zero-width poll returns 0.0 and the next
        real window still sees every count since the last real poll."""
        from repro.core.oracle import RateMeter
        from repro.runtime import SimRuntime

        runtime = SimRuntime()
        counter = [0.0]
        meter = RateMeter(lambda: runtime.now, lambda: counter[0])
        rates = []

        def traffic():
            counter[0] += 100.0

        def poll():
            rates.append(meter())

        runtime.schedule(1.0, traffic)
        # Two polls armed for the same instant: the first has a real
        # 1 s window, the second is zero-width.
        runtime.schedule(1.0, poll)
        runtime.schedule(1.0, poll)
        runtime.schedule(2.0, traffic)
        runtime.schedule(2.0, poll)
        runtime.run()
        # Invariant: total counts equal the integral of reported rates
        # (100 + 100 over two 1 s windows); the zero-width poll in the
        # middle reports 0 without eating either window.
        assert rates == [pytest.approx(100.0), 0.0, pytest.approx(100.0)]

    def test_poll_before_traffic_at_same_instant_keeps_the_window(self):
        """The ordering that actually lost counts: a zero-width poll
        lands after traffic within one tick; advancing the baseline
        there made the next window under-report."""
        from repro.core.oracle import RateMeter
        from repro.runtime import SimRuntime

        runtime = SimRuntime()
        counter = [0.0]
        meter = RateMeter(lambda: runtime.now, lambda: counter[0])
        rates = []
        runtime.schedule(1.0, lambda: rates.append(meter()))
        runtime.run_for(1.0)
        # t=1: poll sees 0 counts over 1 s.
        counter[0] += 50.0
        rates.append(meter())  # same instant as now=1.0 -> zero-width
        runtime.schedule(1.0, lambda: rates.append(meter()))
        runtime.run_for(1.0)
        assert rates[0] == 0.0
        assert rates[1] == 0.0  # zero-width window reports nothing
        # The 50 counts were NOT swallowed: they show up in the t=2 window.
        assert rates[2] == pytest.approx(50.0)
