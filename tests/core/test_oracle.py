"""Unit tests for switching oracles."""

import pytest

from repro.core.oracle import (
    HysteresisOracle,
    ManualOracle,
    ScheduledOracle,
    ThresholdOracle,
)
from repro.errors import SwitchError


class TestThresholdOracle:
    def make(self, values):
        it = iter(values)
        return ThresholdOracle(lambda: next(it), 5.0, "low", "high")

    def test_above_threshold_selects_high(self):
        oracle = self.make([7.0])
        assert oracle.decide(0.0, "low") == "high"

    def test_below_threshold_selects_low(self):
        oracle = self.make([3.0])
        assert oracle.decide(0.0, "high") == "low"

    def test_no_change_returns_none(self):
        oracle = self.make([7.0])
        assert oracle.decide(0.0, "high") is None

    def test_exact_threshold_is_low(self):
        oracle = self.make([5.0])
        assert oracle.decide(0.0, "high") == "low"

    def test_oscillates_around_threshold(self):
        """The defect the paper calls out: values fluttering around the
        threshold flip the decision every poll."""
        values = [5.1, 4.9, 5.1, 4.9]
        it = iter(values)
        oracle = ThresholdOracle(lambda: next(it), 5.0, "low", "high")
        current = "low"
        flips = 0
        for t in range(4):
            target = oracle.decide(float(t), current)
            if target:
                current = target
                flips += 1
        assert flips == 4


class TestHysteresisOracle:
    def test_band_inversion_rejected(self):
        with pytest.raises(SwitchError):
            HysteresisOracle(lambda: 0, 6.0, 4.0, "low", "high")

    def test_negative_dwell_rejected(self):
        with pytest.raises(SwitchError):
            HysteresisOracle(lambda: 0, 1.0, 2.0, "low", "high", min_dwell=-1)

    def test_inside_band_no_switch(self):
        oracle = HysteresisOracle(lambda: 5.0, 4.5, 5.5, "low", "high")
        assert oracle.decide(0.0, "low") is None
        assert oracle.decide(0.0, "high") is None

    def test_fluttering_inside_band_never_switches(self):
        values = iter([4.9, 5.1, 4.9, 5.1, 5.4, 4.6])
        oracle = HysteresisOracle(lambda: next(values), 4.5, 5.5, "low", "high")
        assert all(
            oracle.decide(float(t), "low") is None for t in range(6)
        )

    def test_crossing_high_switches_up(self):
        oracle = HysteresisOracle(lambda: 6.0, 4.5, 5.5, "low", "high")
        assert oracle.decide(0.0, "low") == "high"

    def test_crossing_low_switches_down(self):
        oracle = HysteresisOracle(lambda: 3.0, 4.5, 5.5, "low", "high")
        assert oracle.decide(0.0, "high") == "low"

    def test_dwell_time_suppresses_rapid_flips(self):
        values = iter([6.0, 3.0, 3.0])
        oracle = HysteresisOracle(
            lambda: next(values), 4.5, 5.5, "low", "high", min_dwell=1.0
        )
        assert oracle.decide(0.0, "low") == "high"
        assert oracle.decide(0.5, "high") is None  # within dwell
        assert oracle.decide(1.5, "high") == "low"  # dwell elapsed


class TestScheduledOracle:
    def test_fires_at_time(self):
        oracle = ScheduledOracle([(5.0, "v2")])
        assert oracle.decide(4.9, "v1") is None
        assert oracle.decide(5.0, "v1") == "v2"
        assert oracle.remaining == 0

    def test_multiple_entries_in_order(self):
        oracle = ScheduledOracle([(2.0, "b"), (1.0, "a")])
        assert oracle.decide(1.5, "x") == "a"
        assert oracle.decide(2.5, "a") == "b"

    def test_skipped_polls_collapse_to_latest(self):
        oracle = ScheduledOracle([(1.0, "a"), (2.0, "b")])
        assert oracle.decide(10.0, "x") == "b"

    def test_no_op_when_already_current(self):
        oracle = ScheduledOracle([(1.0, "a")])
        assert oracle.decide(2.0, "a") is None


class TestManualOracle:
    def test_idle_until_escalated(self):
        oracle = ManualOracle()
        assert oracle.decide(0.0, "plain") is None

    def test_escalation_fires_once(self):
        oracle = ManualOracle()
        oracle.escalate("secure")
        assert oracle.decide(0.0, "plain") == "secure"
        assert oracle.decide(1.0, "plain") is None

    def test_escalation_to_current_is_noop(self):
        oracle = ManualOracle()
        oracle.escalate("secure")
        assert oracle.decide(0.0, "secure") is None
