"""Shared test utilities: group builders and delivery collectors."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.switchable import ProtocolSpec, SwitchableStack, build_switch_group
from repro.core.token_switch import FaultToleranceConfig
from repro.stack.layer import Layer
from repro.net.faults import FaultPlan
from repro.net.ptp import LatencyMatrix, PointToPointNetwork
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.stack.membership import Group
from repro.stack.message import Message
from repro.stack.stack import ProcessStack, build_group


class DeliveryLog:
    """Per-rank record of delivered (sender, mid, body) triples."""

    def __init__(self, ranks) -> None:
        self.by_rank: Dict[int, List[Tuple[int, tuple, object]]] = {
            r: [] for r in ranks
        }

    def attach_all(self, stacks) -> None:
        for rank, stack in stacks.items():
            stack.on_deliver(
                lambda msg, rank=rank: self.by_rank[rank].append(
                    (msg.sender, msg.mid, msg.body)
                )
            )

    def bodies(self, rank: int) -> List[object]:
        return [body for __, __, body in self.by_rank[rank]]

    def mids(self, rank: int) -> List[tuple]:
        return [mid for __, mid, __ in self.by_rank[rank]]

    def all_agree(self) -> bool:
        logs = list(self.by_rank.values())
        return all(log == logs[0] for log in logs)

    def same_sets(self) -> bool:
        sets = [set(mids) for mids in map(self._mid_set, self.by_rank)]
        return all(s == sets[0] for s in sets)

    def _mid_set(self, rank: int):
        return [mid for __, mid, __ in self.by_rank[rank]]


def ptp_group(
    num: int,
    layer_factory: Callable[[int], Sequence],
    faults: Optional[FaultPlan] = None,
    latency: Optional[LatencyMatrix] = None,
    seed: int = 1,
) -> Tuple[Simulator, Dict[int, ProcessStack], DeliveryLog]:
    """A group of plain stacks over a point-to-point network."""
    sim = Simulator()
    streams = RandomStreams(seed)
    net = PointToPointNetwork(sim, num, latency=latency, faults=faults, rng=streams)
    group = Group.of_size(num)
    stacks = build_group(sim, net, group, layer_factory, streams=streams)
    log = DeliveryLog(group)
    log.attach_all(stacks)
    return sim, stacks, log


def switch_group(
    num: int,
    specs: Sequence[ProtocolSpec],
    initial: str,
    variant: str = "token",
    faults: Optional[FaultPlan] = None,
    latency: Optional[LatencyMatrix] = None,
    token_interval: float = 0.002,
    seed: int = 1,
    fault_tolerance: Optional[FaultToleranceConfig] = None,
    switch_timeout: Optional[float] = None,
    control_factory: Optional[Callable[[int], Sequence[Layer]]] = None,
) -> Tuple[Simulator, Dict[int, SwitchableStack], DeliveryLog]:
    """A group of switchable stacks over a point-to-point network."""
    sim = Simulator()
    streams = RandomStreams(seed)
    net = PointToPointNetwork(sim, num, latency=latency, faults=faults, rng=streams)
    group = Group.of_size(num)
    stacks = build_switch_group(
        sim, net, group, specs, initial=initial, variant=variant,
        token_interval=token_interval, streams=streams,
        fault_tolerance=fault_tolerance, switch_timeout=switch_timeout,
        control_factory=control_factory,
    )
    log = DeliveryLog(group)
    log.attach_all(stacks)
    return sim, stacks, log
