"""CLI command rendering paths, with the heavy experiments stubbed.

The real experiments behind each command are exercised by the benchmark
harness; here we verify each command's reporting logic and exit codes.
"""

import json

import pytest

import repro.cli as cli
from repro.workloads.experiment import (
    LatencyResult,
    OscillationResult,
    SwitchOverheadResult,
)


def fake_sweep_results(protocols, counts):
    out = {}
    for protocol in protocols:
        series = []
        for k in counts:
            mean = (2.0 + k * (4.0 if protocol == "sequencer" else 0.5)
                    if protocol != "token" else 12.0 + 0.5 * k)
            series.append(LatencyResult(protocol, k, mean, mean, mean, 100))
        out[protocol] = series
    return out


def test_cmd_figure2_renders(monkeypatch, capsys):
    import repro.workloads.experiment as experiment

    monkeypatch.setattr(
        experiment,
        "run_figure2_sweep",
        lambda protocols, counts, config: fake_sweep_results(protocols, counts),
    )
    code = cli.main(["figure2", "--duration", "0.1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Figure 2" in out
    assert "sequencer" in out and "token" in out
    assert "crossover" in out


def test_cmd_figure2_hybrid_flag(monkeypatch, capsys):
    import repro.workloads.experiment as experiment

    monkeypatch.setattr(
        experiment,
        "run_figure2_sweep",
        lambda protocols, counts, config: fake_sweep_results(protocols, counts),
    )
    cli.main(["figure2", "--hybrid"])
    out = capsys.readouterr().out
    assert "hybrid" in out


def test_cmd_overhead_renders(monkeypatch, capsys):
    import repro.workloads.experiment as experiment

    def fake(senders, direction, config):
        return SwitchOverheadResult(
            active_senders=senders,
            direction=direction,
            switch_duration_ms=60.0,
            max_hiccup_ms=30.0,
            baseline_hiccup_ms=25.0,
            sends_blocked=0,
        )

    monkeypatch.setattr(experiment, "run_switch_overhead_experiment", fake)
    code = cli.main(["overhead"])
    out = capsys.readouterr().out
    assert code == 0
    assert "31 msecs" in out
    assert "60.0ms" in out


def test_cmd_oscillation_renders(monkeypatch, capsys):
    import repro.workloads.experiment as experiment

    def fake(policy, config):
        requests = 12 if policy == "aggressive" else 1
        return OscillationResult(policy, requests, requests, 15.0)

    monkeypatch.setattr(experiment, "run_oscillation_experiment", fake)
    code = cli.main(["oscillation"])
    out = capsys.readouterr().out
    assert code == 0
    assert "aggressive" in out and "hysteresis" in out


def test_cmd_table2_exit_code_reflects_agreement(monkeypatch, capsys):
    import repro.traces.universes as universes
    import repro.traces.verify as verify

    # A tiny stand-in matrix computation.
    from repro.traces.verify import MatrixCell, Verdict

    monkeypatch.setattr(universes, "table2_universes", lambda depth: [])
    import repro.traces.report as report_mod

    def fake_matrix(props, metas, paper_table=None):
        return [
            MatrixCell("Total Order", "Safety", Verdict(True, None, 1, 1), True)
        ]

    monkeypatch.setattr(verify, "compute_matrix", fake_matrix)
    code = cli.main(["table2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Total Order" in out


# ----------------------------------------------------------------------
# chaos command
# ----------------------------------------------------------------------
def fake_chaos_result(config, violations=()):
    from repro.testing.chaos import ChaosResult

    return ChaosResult(
        config=config,
        violations=list(violations),
        final_protocols={0: "tok", 1: "tok"},
        casts=10,
        delivered={0: 10, 1: 10},
        switches_completed=2,
        switches_aborted=1,
        counters={"regenerated_tokens": 3},
        timeline=[(0.1, "cast")],
        settle_time=6.5,
    )


def test_cmd_chaos_clean_run_exits_zero(monkeypatch, capsys):
    import repro.testing.chaos as chaos

    captured = {}

    def fake_run(config, bus=None):
        captured["config"] = config
        return fake_chaos_result(config)

    monkeypatch.setattr(chaos, "run_chaos", fake_run)
    code = cli.main(
        [
            "chaos",
            "--seed", "5",
            "--members", "6",
            "--control-loss", "0.2",
            "--crash", "2:1.0:2.5",
            "--crash", "4:3.0",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "oracle: all properties hold" in out
    config = captured["config"]
    assert config.seed == 5 and config.members == 6
    assert config.control_loss == 0.2
    assert [(c.rank, c.at, c.permanent) for c in config.crashes] == [
        (2, 1.0, False),
        (4, 3.0, True),
    ]


def test_cmd_chaos_violations_exit_one(monkeypatch, capsys):
    import repro.testing.chaos as chaos

    monkeypatch.setattr(
        chaos,
        "run_chaos",
        lambda config, bus=None: fake_chaos_result(
            config, violations=["member 1 delivered 2 duplicates"]
        ),
    )
    code = cli.main(["chaos"])
    out = capsys.readouterr().out
    assert code == 1
    assert "VIOLATIONS" in out
    assert "duplicates" in out


def test_cmd_chaos_rejects_malformed_crash_spec(capsys):
    code = cli.main(["chaos", "--crash", "nonsense"])
    out = capsys.readouterr().out
    assert code == 2
    assert "bad --crash spec" in out


def test_cmd_chaos_rejects_invalid_config_cleanly(capsys):
    # Config errors surface as a message + exit 2, not a traceback.
    code = cli.main(
        ["chaos", "--members", "2", "--crash", "0:0.5", "--crash", "1:0.5"]
    )
    out = capsys.readouterr().out
    assert code == 2
    assert "bad chaos configuration" in out
    assert "two members alive" in out


def test_cmd_chaos_rejects_invalid_loss_rate_cleanly(capsys):
    code = cli.main(["chaos", "--control-loss", "1.0"])
    out = capsys.readouterr().out
    assert code == 2
    assert "bad chaos configuration" in out


# ----------------------------------------------------------------------
# run command (runtime demo)
# ----------------------------------------------------------------------
def fake_switchrun_result(config, violations=()):
    from repro.workloads.switchrun import SwitchRunResult

    return SwitchRunResult(
        config=config,
        runtime=config.runtime,
        casts=100,
        delivered={0: 100, 1: 100},
        mean_ms=1.5,
        median_ms=1.2,
        p90_ms=2.5,
        samples=200,
        switch_duration_ms=12.0,
        max_hiccup_ms=27.0,
        switches_completed=1,
        final_protocols={0: "tokenring", 1: "tokenring"},
        settle_time=3.25,
        violations=list(violations),
    )


def test_cmd_run_clean_exits_zero(monkeypatch, capsys):
    import repro.workloads.switchrun as switchrun

    captured = {}

    def fake_run(config, bus=None):
        captured["config"] = config
        return fake_switchrun_result(config)

    monkeypatch.setattr(switchrun, "run_switch_demo", fake_run)
    code = cli.main(
        ["run", "--runtime", "sim", "--members", "6", "--seed", "9"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "runtime=sim" in out
    assert "sequencer->tokenring" in out
    assert "oracle" in out
    config = captured["config"]
    assert config.runtime == "sim"
    assert config.members == 6 and config.seed == 9


def test_cmd_run_forwards_asyncio_flags(monkeypatch, capsys):
    import repro.workloads.switchrun as switchrun

    captured = {}

    def fake_run(config, bus=None):
        captured["config"] = config
        return fake_switchrun_result(config)

    monkeypatch.setattr(switchrun, "run_switch_demo", fake_run)
    code = cli.main(["run", "--runtime", "asyncio", "--base-port", "48000"])
    assert code == 0
    assert captured["config"].runtime == "asyncio"
    assert captured["config"].base_port == 48000


def test_cmd_run_violations_exit_one(monkeypatch, capsys):
    import repro.workloads.switchrun as switchrun

    monkeypatch.setattr(
        switchrun,
        "run_switch_demo",
        lambda config, bus=None: fake_switchrun_result(
            config, violations=["member 1 delivered 2 duplicates"]
        ),
    )
    code = cli.main(["run"])
    out = capsys.readouterr().out
    assert code == 1
    assert "VIOLATIONS" in out
    assert "duplicates" in out


def test_cmd_run_rejects_invalid_config_cleanly(capsys):
    code = cli.main(["run", "--members", "1"])
    out = capsys.readouterr().out
    assert code == 2
    assert "bad run configuration" in out


def test_cmd_run_rejects_unknown_runtime(capsys):
    with pytest.raises(SystemExit):
        cli.main(["run", "--runtime", "quantum"])
    err = capsys.readouterr().err
    assert "invalid choice" in err


def test_cmd_run_trace_flags_write_artifacts(monkeypatch, capsys, tmp_path):
    """--trace/--metrics hand the runner a live bus and export its output."""
    import json

    import repro.workloads.switchrun as switchrun

    def fake_run(config, bus=None):
        assert bus is not None and bus.enabled
        with bus.span("switch/total", rank=0, switch=[1, 0]):
            bus.emit("token/hop", rank=0, kind="PREPARE", to=1)
        bus.count("token.hops")
        bus.observe("switch.duration_s", 0.012)
        return fake_switchrun_result(config)

    monkeypatch.setattr(switchrun, "run_switch_demo", fake_run)
    trace = tmp_path / "out.trace.json"
    metrics = tmp_path / "metrics.json"
    events = tmp_path / "events.jsonl"
    code = cli.main(
        ["run", "--trace", str(trace), "--metrics", str(metrics),
         "--events", str(events)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "Perfetto-loadable" in out

    records = json.loads(trace.read_text())
    assert any(r.get("ph") == "X" for r in records)
    snapshot = json.loads(metrics.read_text())
    assert snapshot["command"] == "run"
    assert snapshot["counters"]["token.hops"] == 1
    assert len(events.read_text().splitlines()) == 2


def test_cmd_run_without_flags_passes_no_bus(monkeypatch, capsys):
    seen = {}

    import repro.workloads.switchrun as switchrun

    def fake_run(config, bus=None):
        seen["bus"] = bus
        return fake_switchrun_result(config)

    monkeypatch.setattr(switchrun, "run_switch_demo", fake_run)
    assert cli.main(["run"]) == 0
    capsys.readouterr()
    assert seen["bus"] is None


def test_cmd_metrics_pretty_prints(capsys, tmp_path):
    import json

    path = tmp_path / "metrics.json"
    path.write_text(json.dumps({
        "command": "run",
        "seed": 42,
        "counters": {"token.hops": 31},
        "gauges": {"core.buffer_depth[r1]": {"value": 2.0, "time": 1.5}},
        "histograms": {
            "switch.duration_s": {
                "count": 1, "sum": 0.012, "mean": 0.012, "min": 0.012,
                "max": 0.012, "p50": 0.012, "p90": 0.012, "p99": 0.012,
                "buckets": [[0.02, 1]],
            },
        },
    }))
    code = cli.main(["metrics", str(path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "command=run" in out and "seed=42" in out
    assert "token.hops" in out and "31" in out
    assert "core.buffer_depth[r1]" in out
    assert "switch.duration_s" in out and "p99" in out


def test_cmd_metrics_missing_file_exits_two(capsys, tmp_path):
    code = cli.main(["metrics", str(tmp_path / "nope.json")])
    out = capsys.readouterr().out
    assert code == 2
    assert "cannot read metrics file" in out


# ----------------------------------------------------------------------
# chaos --settle (real runs, no mocking: the exit code must come from an
# actual convergence check, not from reporting logic)
# ----------------------------------------------------------------------
def test_cmd_chaos_settle_forwarded(monkeypatch, capsys):
    import repro.testing.chaos as chaos

    captured = {}

    def fake_run(config, bus=None):
        captured["config"] = config
        return fake_chaos_result(config)

    monkeypatch.setattr(chaos, "run_chaos", fake_run)
    assert cli.main(["chaos", "--settle", "3"]) == 0
    capsys.readouterr()
    assert captured["config"].settle == 3


def test_cmd_chaos_settle_zero_fails_for_real(capsys):
    # --settle 0 grants the group no drain windows at all, so a real run
    # (loss on the control channel, mid-flight switches) must report a
    # genuine convergence violation and exit nonzero.
    code = cli.main(
        ["chaos", "--settle", "0", "--duration", "1.5",
         "--control-loss", "0.05", "--seed", "3"]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "VIOLATIONS" in out
    assert "did not converge within 0 settle windows" in out


def test_cmd_chaos_default_settle_passes_for_real(capsys):
    # The same run with the default settle budget converges and exits 0.
    code = cli.main(
        ["chaos", "--duration", "1.5", "--control-loss", "0.05",
         "--seed", "3"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "oracle: all properties hold" in out


# ----------------------------------------------------------------------
# scenario command (catalog-driven chaos/oracle testbed)
# ----------------------------------------------------------------------
def test_cmd_scenario_list(capsys):
    code = cli.main(["scenario", "--list"])
    out = capsys.readouterr().out
    assert code == 0
    for name in ("baseline_steady", "flash_crowd", "congestion_collapse"):
        assert name in out


def test_cmd_scenario_unknown_name_exits_two(capsys):
    code = cli.main(["scenario", "no_such_scenario"])
    out = capsys.readouterr().out
    assert code == 2
    assert "unknown scenario" in out


def test_cmd_scenario_requires_name_or_all(capsys):
    code = cli.main(["scenario"])
    out = capsys.readouterr().out
    assert code == 2
    assert "pass --all / --list" in out


def test_cmd_scenario_single_run_passes(capsys, tmp_path):
    # A real end-to-end run on the sim runtime, plus the JSON artifact.
    out_path = tmp_path / "verdict.json"
    code = cli.main(
        ["scenario", "baseline_steady", "--json", str(out_path)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "[PASS] baseline_steady" in out
    artifact = json.loads(out_path.read_text())
    assert artifact["suite"] == "scenarios"
    assert artifact["scenarios"]["baseline_steady"]["ok"] is True


def test_cmd_scenario_wrong_runtime_exits_two(capsys):
    # baseline_steady only declares the sim runtime.
    code = cli.main(["scenario", "baseline_steady", "--runtime", "asyncio"])
    out = capsys.readouterr().out
    assert code == 2
    assert "declares runtimes" in out


def test_cmd_fleet_sharded_end_to_end(capsys, tmp_path):
    # A real (tiny) sharded fleet through the CLI, plus the JSON result.
    out_path = tmp_path / "fleet.json"
    code = cli.main(
        [
            "fleet",
            "--groups", "8",
            "--members", "3",
            "--nodes", "6",
            "--clients", "80",
            "--client-rate", "0.5",
            "--duration", "1.5",
            "--settle", "1.0",
            "--shards", "2",
            "--json", str(out_path),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "across 2 shards" in out
    assert "shards:  2 worker processes" in out
    result = json.loads(out_path.read_text())
    assert result["shards"] == 2
    assert len(result["shard_stats"]) == 2
    assert len(result["per_group"]) == 8
    assert result["violations"] == []


def test_cmd_fleet_shards_rejected_on_asyncio(capsys):
    code = cli.main(["fleet", "--runtime", "asyncio", "--shards", "2"])
    out = capsys.readouterr().out
    assert code == 2
    assert "bad fleet configuration" in out
    assert "sim runtime" in out
