"""Public API surface tests: everything advertised is importable and the
declared exports exist."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.net",
    "repro.stack",
    "repro.protocols",
    "repro.core",
    "repro.traces",
    "repro.workloads",
    "repro.cli",
    "repro.errors",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize(
    "name",
    [
        "repro",
        "repro.sim",
        "repro.net",
        "repro.stack",
        "repro.protocols",
        "repro.core",
        "repro.traces",
        "repro.workloads",
    ],
)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_version():
    assert repro.__version__ == "1.0.0"


def test_error_hierarchy():
    from repro.errors import (
        NetworkError,
        ProtocolError,
        ReproError,
        SimulationError,
        StackError,
        SwitchError,
        TraceError,
        VerificationError,
    )

    for exc in (
        SimulationError,
        NetworkError,
        StackError,
        SwitchError,
        TraceError,
        VerificationError,
    ):
        assert issubclass(exc, ReproError)
    assert issubclass(ProtocolError, StackError)


def test_top_level_convenience():
    """The README quickstart's imports all come from the root package."""
    for symbol in (
        "ProtocolSpec",
        "Simulator",
        "build_switch_group",
        "SwitchableStack",
        "ViewSwitchStack",
        "HysteresisOracle",
        "Trace",
        "TraceRecorder",
        "Group",
    ):
        assert hasattr(repro, symbol)


def test_docstrings_on_public_modules():
    for name in PACKAGES:
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"
