"""The telemetry plane: SLO engine, flight recorder, aggregation, expo."""

import json

import pytest

from repro.errors import TelemetryError
from repro.obs.bus import Bus
from repro.obs.telemetry import (
    FlightRecorder,
    SLOEngine,
    SLOTarget,
    TelemetryConfig,
    TelemetryPlane,
)
from repro.obs.telemetry.expo import render_prometheus
from repro.obs.telemetry.top import load_payload, render_top, run_top
from repro.runtime.sim_runtime import SimRuntime


def window(**overrides):
    base = {
        "t": 1.0,
        "window_s": 1.0,
        "casts": 10,
        "delivered": 30,
        "rate": 30.0,
        "p50_ms": 1.0,
        "p99_ms": 2.0,
        "switches": 0,
        "aborts": 0,
        "max_switch_s": None,
        "delivery_ratio": 1.0,
    }
    base.update(overrides)
    return base


class TestSLOTarget:
    def test_validation(self):
        with pytest.raises(TelemetryError, match="non-empty name"):
            SLOTarget("", "delivery_p99_ms", 1.0)
        with pytest.raises(TelemetryError, match="unknown SLO signal"):
            SLOTarget("x", "nope", 1.0)
        with pytest.raises(TelemetryError, match="positive"):
            SLOTarget("x", "delivery_p99_ms", 0.0)

    def test_ceiling_vs_floor_direction(self):
        ceiling = SLOTarget("lat", "delivery_p99_ms", 5.0)
        assert ceiling.violated_by(5.1) and not ceiling.violated_by(5.0)
        floor = SLOTarget("ratio", "delivery_ratio", 0.9)
        assert floor.is_floor
        assert floor.violated_by(0.89) and not floor.violated_by(0.9)


class TestSLOEngine:
    def test_duplicate_names_rejected(self):
        t = SLOTarget("same", "delivery_p99_ms", 1.0)
        with pytest.raises(TelemetryError, match="duplicate"):
            SLOEngine([t, t])

    def test_burn_accumulates_and_edges_fire_once(self):
        engine = SLOEngine([SLOTarget("lat", "delivery_p99_ms", 5.0)])
        # First bad window: a fresh burn edge.
        assert engine.evaluate(1, window(p99_ms=9.0)) == ["lat"]
        # Still burning: no new edge, but more burn time.
        assert engine.evaluate(1, window(p99_ms=8.0)) == []
        assert engine.burn_minutes(1) == pytest.approx(2.0 / 60.0)
        assert engine.alerts == 2
        # Recovery clears the latch; the next burn is a fresh edge again.
        assert engine.evaluate(1, window(p99_ms=1.0)) == []
        assert engine.evaluate(1, window(p99_ms=9.0)) == ["lat"]

    def test_missing_signal_neither_burns_nor_clears(self):
        engine = SLOEngine([SLOTarget("lat", "delivery_p99_ms", 5.0)])
        engine.evaluate(1, window(p99_ms=9.0))
        # A quiet window (no latency samples) leaves the latch burning.
        assert engine.evaluate(1, window(p99_ms=None)) == []
        assert engine.status(1)["ok"] is False

    def test_switch_duration_reads_window_max(self):
        engine = SLOEngine([SLOTarget("tts", "switch_duration_s", 0.5)])
        assert engine.evaluate(3, window(max_switch_s=0.9)) == ["tts"]
        assert engine.status(3) == {
            "ok": False,
            "burning": ["tts"],
            "burn_minutes": pytest.approx(1.0 / 60.0),
        }

    def test_burn_events_reach_the_bus(self):
        bus = Bus(enabled=True)
        engine = SLOEngine([SLOTarget("lat", "delivery_p99_ms", 5.0)], bus=bus)
        engine.evaluate(7, window(p99_ms=9.0))
        burns = [e for e in bus.events if e.name == "slo/burn"]
        assert len(burns) == 1
        assert burns[0].args == {
            "group": 7,
            "slo": "lat",
            "signal": "delivery_p99_ms",
            "value": 9.0,
            "budget": 5.0,
        }

    def test_snapshot_rolls_up_fleet_wide(self):
        engine = SLOEngine([SLOTarget("lat", "delivery_p99_ms", 5.0)])
        engine.evaluate(1, window(p99_ms=9.0))
        engine.evaluate(2, window(p99_ms=9.0))
        snap = engine.snapshot()
        assert snap["alerts"] == 2
        assert snap["groups_burning"] == 2
        assert snap["targets"] == [
            {"name": "lat", "signal": "delivery_p99_ms", "budget": 5.0}
        ]


class TestFlightRecorder:
    def test_ring_is_bounded_and_freeze_keeps_last_n(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record(1, {"t": float(i), "name": f"e{i}", "kind": "i"})
        capture = recorder.freeze(1, "switch_abort")
        assert [r["name"] for r in capture.records] == ["e6", "e7", "e8", "e9"]
        assert capture.time == 9.0  # inferred from the last record

    def test_empty_ring_and_repeat_trigger_do_not_capture(self):
        recorder = FlightRecorder()
        assert recorder.freeze(1, "switch_abort") is None
        recorder.record(1, {"t": 0.0, "name": "e", "kind": "i"})
        assert recorder.freeze(1, "switch_abort") is not None
        # Same (group, trigger) pair: the first incident already froze.
        assert recorder.freeze(1, "switch_abort") is None
        # A different trigger for the same group still captures.
        assert recorder.freeze(1, "dirty_teardown") is not None

    def test_capture_cap_counts_overflow(self):
        recorder = FlightRecorder(max_captures=1)
        recorder.record(1, {"t": 0.0, "name": "a", "kind": "i"})
        recorder.record(2, {"t": 0.0, "name": "b", "kind": "i"})
        assert recorder.freeze(1, "x") is not None
        assert recorder.freeze(2, "x") is None
        assert recorder.captures_dropped == 1

    def test_bus_attach_rings_events_and_freezes_on_abort(self):
        bus = Bus(enabled=True, max_events=0)  # pure stream, no retention
        recorder = FlightRecorder()
        recorder.attach(bus)
        bus.emit("token/hop", rank=2, group=5, to=1)
        bus.emit("switch/abort", rank=0, group=5, reason="stalled", phase="flush")
        assert len(recorder.captures) == 1
        capture = recorder.captures[0]
        assert capture.group == 5
        assert capture.detail == "stalled"
        assert [r["name"] for r in capture.records] == [
            "token/hop",
            "switch/abort",
        ]

    def test_groupless_events_land_in_ring_zero(self):
        bus = Bus(enabled=True)
        recorder = FlightRecorder()
        recorder.attach(bus)
        bus.emit("switch/abort", reason="lost")
        assert recorder.captures[0].group == 0

    def test_jsonl_export_round_trips(self, tmp_path):
        recorder = FlightRecorder()
        recorder.record(3, {"t": 1.0, "name": "e", "kind": "i"})
        recorder.freeze(3, "slo:lat", detail="p99 over budget")
        path = tmp_path / "blackbox.jsonl"
        assert recorder.write_jsonl(str(path)) == 2
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0] == {
            "type": "capture",
            "group": 3,
            "trigger": "slo:lat",
            "time": 1.0,
            "detail": "p99 over budget",
            "records": 1,
        }
        assert lines[1] == {
            "type": "record",
            "group": 3,
            "t": 1.0,
            "name": "e",
            "kind": "i",
        }


class FakeOracleRecord:
    def __init__(self, gid):
        self.time = 0.0
        self.group_id = gid
        self.current = "sequencer"
        self.target = "tokenring"
        self.signal = 99.0

    def as_dict(self):
        return {"group_id": self.group_id, "signal": self.signal}


def make_plane(runtime=None, **config):
    runtime = runtime or SimRuntime()
    bus = Bus(clock=runtime, enabled=True, max_events=0)
    plane = TelemetryPlane(runtime, bus, TelemetryConfig(**config))
    return runtime, plane


class TestTelemetryPlane:
    def test_windows_roll_counts_and_reset(self):
        runtime, plane = make_plane(window=1.0, history=3)
        plane.watch_group(1, members=3)
        for _ in range(6):
            plane.note_delivery(1, latency_s=0.002)
        plane.note_cast(1)
        plane.note_cast(1)
        runtime.run_for(1.0)
        plane.roll()
        windows = plane.group_windows(1)
        assert len(windows) == 1
        assert windows[0]["delivered"] == 6
        assert windows[0]["casts"] == 2
        assert windows[0]["rate"] == 6.0
        assert windows[0]["delivery_ratio"] == pytest.approx(1.0)
        assert windows[0]["p99_ms"] == pytest.approx(2.0, rel=0.5)
        # The next window starts from zero.
        plane.roll()
        assert plane.group_windows(1)[-1]["delivered"] == 0
        # Totals survive the resets.
        assert plane.group_snapshot(1)["delivered"] == 6

    def test_history_is_bounded(self):
        runtime, plane = make_plane(window=1.0, history=2)
        plane.watch_group(1)
        for _ in range(5):
            plane.roll()
        assert len(plane.group_windows(1)) == 2
        assert len(plane.snapshot()["fleet_windows"]) == 2

    def test_started_timer_rolls_on_the_runtime_clock(self):
        runtime, plane = make_plane(window=0.5, history=10)
        plane.watch_group(1)
        plane.start()
        runtime.run_for(2.1)
        plane.stop()
        rolled = len(plane.group_windows(1))
        assert rolled == 4
        runtime.run_for(2.0)  # stopped: no further rolls
        assert len(plane.group_windows(1)) == rolled

    def test_single_latency_sample_yields_no_quantiles(self):
        runtime, plane = make_plane()
        plane.watch_group(1)
        plane.note_delivery(1, latency_s=0.001)
        plane.roll()
        w = plane.group_windows(1)[0]
        assert w["p50_ms"] is None and w["p99_ms"] is None

    def test_time_to_switch_stopwatch(self):
        runtime, plane = make_plane()
        plane.watch_group(4)
        plane.note_escalation(4)
        runtime.run_for(0.25)
        plane.note_switch(4, "sequencer", "tokenring")
        snap = plane.group_snapshot(4)
        assert snap["last_switch_s"] == pytest.approx(0.25)
        assert snap["switches"] == 1
        plane.roll()
        assert plane.group_windows(4)[0]["max_switch_s"] == pytest.approx(0.25)

    def test_abort_freezes_the_recorder(self):
        runtime, plane = make_plane()
        plane.watch_group(2)
        plane.note_delivery(2)
        plane.note_abort(2, reason="flush stalled", phase="flush")
        assert plane.group_snapshot(2)["aborts"] == 1
        captures = plane.recorder.captures
        assert len(captures) == 1
        assert captures[0].trigger == "switch_abort"
        assert captures[0].detail == "flush stalled"

    def test_oracle_attach_annotates_decisions(self):
        runtime, plane = make_plane()
        plane.watch_group(9, members=3)
        plane.note_cast(9)

        class FakeOracle:
            snapshot_provider = None
            on_decision = None

        oracle = FakeOracle()
        plane.attach_oracle(oracle)
        justification = oracle.snapshot_provider(9)
        assert justification["group"] == 9
        assert justification["window_partial"] == {"casts": 1, "delivered": 0}
        oracle.on_decision(FakeOracleRecord(9))
        assert plane.escalations == [{"group_id": 9, "signal": 99.0}]
        # The stopwatch started: a completing switch now has a duration.
        runtime.run_for(0.1)
        plane.note_switch(9)
        assert plane.group_snapshot(9)["last_switch_s"] == pytest.approx(0.1)

    def test_slo_burn_freezes_the_recorder_per_target(self):
        runtime, plane = make_plane(
            window=1.0, slos=(SLOTarget("ratio", "delivery_ratio", 0.9),)
        )
        plane.watch_group(1, members=2)
        plane.note_cast(1)
        plane.note_delivery(1)  # 1 of an expected 2: ratio 0.5 < 0.9
        plane.roll()
        assert [c.trigger for c in plane.recorder.captures] == ["slo:ratio"]
        assert plane.slo.status(1)["ok"] is False

    def test_unwatched_group_snapshot_raises(self):
        __, plane = make_plane()
        with pytest.raises(TelemetryError, match="not watched"):
            plane.group_snapshot(123)

    def test_snapshot_is_json_serializable(self):
        runtime, plane = make_plane()
        plane.watch_group(1, members=3, hot=True, sequencer=0)
        plane.note_delivery(1, latency_s=0.001)
        plane.roll()
        payload = json.dumps(plane.snapshot())
        assert "fleet" in json.loads(payload)

    def test_config_validation(self):
        with pytest.raises(TelemetryError, match="window"):
            TelemetryConfig(window=0.0)
        with pytest.raises(TelemetryError, match="history"):
            TelemetryConfig(history=0)


class TestPrometheusRendering:
    def snapshot(self):
        runtime, plane = make_plane()
        plane.watch_group(1, members=3, hot=True, sequencer=0)
        plane.watch_group(2, members=3)
        for _ in range(4):
            plane.note_delivery(1, latency_s=0.002)
        plane.roll()
        return plane.snapshot()

    def test_core_series_present(self):
        text = render_prometheus(self.snapshot())
        assert "# TYPE repro_fleet_delivered_total counter" in text
        assert "repro_fleet_delivered_total 4" in text
        assert 'repro_group_delivered_total{group="1"} 4' in text
        assert 'repro_group_delivered_total{group="2"} 0' in text
        assert 'repro_group_slo_ok{group="1"} 1' in text
        assert text.endswith("\n")

    def test_none_samples_are_skipped(self):
        # Group 2 rolled an empty window: no quantiles, hence no series.
        text = render_prometheus(self.snapshot())
        assert 'repro_group_delivery_p99_ms{group="2"}' not in text
        assert 'repro_group_delivery_p99_ms{group="1"}' in text


class TestTop:
    def payload(self):
        runtime, plane = make_plane()
        plane.watch_group(1, members=3, hot=True)
        plane.watch_group(2, members=3)
        for _ in range(9):
            plane.note_delivery(1, latency_s=0.001)
        plane.roll()
        return {
            "schema_version": 1,
            "kind": "telemetry",
            "source": "poll",
            "snapshot": plane.snapshot(),
        }

    def test_render_sorts_hottest_first_and_truncates(self):
        frame = render_top(self.payload(), limit=1)
        lines = frame.splitlines()
        assert lines[0].startswith("fleet ")
        table = [l for l in lines if l.lstrip().startswith(("1", "2"))]
        assert table[0].lstrip().startswith("1")  # the hot group leads
        assert "... 1 more groups" in frame

    def test_load_payload_accepts_payload_and_bare_snapshot(self, tmp_path):
        payload = self.payload()
        wrapped = tmp_path / "payload.json"
        wrapped.write_text(json.dumps(payload))
        assert load_payload(str(wrapped))["snapshot"] == payload["snapshot"]
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(payload["snapshot"]))
        loaded = load_payload(str(bare))
        assert loaded["source"] == "file"
        assert loaded["snapshot"] == payload["snapshot"]
        junk = tmp_path / "junk.json"
        junk.write_text("{}")
        with pytest.raises(ValueError, match="neither"):
            load_payload(str(junk))

    def test_run_top_once_json_prints_payload(self, tmp_path):
        path = tmp_path / "payload.json"
        path.write_text(json.dumps(self.payload()))
        out = []
        assert run_top(str(path), once=True, as_json=True, write=out.append) == 0
        assert json.loads(out[0])["kind"] == "telemetry"

    def test_run_top_missing_source_fails_cleanly(self):
        out = []
        code = run_top("/nonexistent/tele.json", once=True, write=out.append)
        assert code == 1
        assert "cannot read telemetry" in out[0]

    def test_run_top_frames_are_bounded(self, tmp_path):
        path = tmp_path / "payload.json"
        path.write_text(json.dumps(self.payload()))
        out, naps = [], []
        code = run_top(
            str(path), frames=3, interval=0.5,
            write=out.append, sleep=naps.append,
        )
        assert code == 0
        assert len(out) == 3
        assert naps == [0.5, 0.5]  # no sleep after the last frame
        assert out[1].startswith("\x1b[2J\x1b[H")  # redraws clear the screen


class TestTelemetryServerLargeBodies:
    """The scrape client must loop until Content-Length bytes arrive."""

    class _BigPlane:
        """A plane whose snapshot JSON far exceeds one read buffer."""

        def __init__(self, entries=3000):
            self._groups = {
                str(gid): {
                    "delivered": gid * 7,
                    "protocol": "sequencer-%04d" % gid,
                    "rate": gid * 0.5,
                }
                for gid in range(entries)
            }

        def snapshot(self):
            return {"fleet": {"groups": len(self._groups)},
                    "groups": self._groups}

        def prometheus(self):
            from repro.obs.telemetry.expo import render_prometheus

            return render_prometheus(self.snapshot())

    def test_scrape_receives_every_byte_of_a_big_snapshot(self):
        import asyncio
        import json

        from repro.obs.telemetry.expo import TelemetryServer, scrape

        plane = self._BigPlane()
        assert len(json.dumps(plane.snapshot())) > 64 * 1024

        async def drive():
            server = await TelemetryServer(plane).open()
            try:
                return await scrape(server.host, server.port)
            finally:
                await server.aclose()

        payload = asyncio.run(drive())
        # The whole document arrived and parses; a short read would
        # have truncated the JSON mid-object.
        assert payload["snapshot"] == json.loads(
            json.dumps(plane.snapshot())
        )
        assert payload["prometheus"].endswith("\n")
        assert 'group="2999"' in payload["prometheus"]
