"""Observability under fleet lifecycle churn.

BusScope nesting (rank + group labels on one shared bus), PhaseTracker
reuse across switch generations, and the full fleet cycle — attach,
drain, teardown, re-attach over the same ports — with the telemetry
plane watching.
"""

from repro.core.switchable import ProtocolSpec
from repro.fleet import GroupManager
from repro.net.ptp import PointToPointNetwork
from repro.obs.bus import Bus, PhaseTracker
from repro.obs.telemetry import TelemetryConfig, TelemetryPlane
from repro.protocols.fifo import FifoLayer
from repro.protocols.sequencer import SequencerLayer
from repro.runtime.sim_runtime import SimRuntime


class TestBusScopeNesting:
    def test_rank_and_group_labels_compose(self):
        bus = Bus(enabled=True)
        scope = bus.scoped(2, 7)
        scope.count("fleet.delivered")
        scope.observe("latency_s", 0.001)
        scope.gauge("queue_depth", 3.0)
        assert bus.metrics.counter("fleet.delivered[g7]") == 1
        assert bus.metrics.histogram("latency_s[g7]").count == 1
        # Gauges are per-producer: rank first, then the group label.
        assert "queue_depth[r2][g7]" in bus.metrics.snapshot()["gauges"]

    def test_group_scope_stamps_events(self):
        bus = Bus(enabled=True)
        bus.scoped(1, 5).emit("token/hop", to=2)
        assert bus.events[-1].args == {"group": 5, "to": 2}
        assert bus.events[-1].rank == 1

    def test_rank_only_scope_is_the_pre_fleet_shape(self):
        bus = Bus(enabled=True)
        bus.scoped(1).count("fleet.delivered")
        assert bus.metrics.counter("fleet.delivered") == 1

    def test_scopes_on_one_bus_stay_separable(self):
        bus = Bus(enabled=True)
        for gid in (1, 2, 3):
            for _ in range(gid):
                bus.scoped(0, gid).count("fleet.delivered")
        assert [
            bus.metrics.counter(f"fleet.delivered[g{gid}]") for gid in (1, 2, 3)
        ] == [1, 2, 3]


class TestPhaseTrackerReuse:
    def test_generations_accumulate_without_leaking_spans(self):
        runtime = SimRuntime()
        bus = Bus(clock=runtime, enabled=True)
        tracker = PhaseTracker(bus.scoped(0, 9))

        # Generation 1: a completed switch.
        tracker.begin((0, 1), "sequencer", "tokenring")
        runtime.run_for(0.1)
        tracker.phase((0, 1), "switch")
        runtime.run_for(0.1)
        tracker.complete((0, 1), duration=0.2)

        # Generation 2 on the same tracker: an aborted switch.
        tracker.begin((0, 2), "tokenring", "sequencer")
        runtime.run_for(0.1)
        tracker.abort((0, 2), reason="stalled", phase="prepare")

        # Generation 3: completes again.
        tracker.begin((0, 3), "sequencer", "tokenring")
        tracker.complete((0, 3), duration=0.0)

        metrics = bus.metrics
        assert metrics.counter("switch.initiated[g9]") == 3
        assert metrics.counter("switch.completed[g9]") == 2
        assert metrics.counter("switch.aborted[g9]") == 1
        assert metrics.histogram("switch.duration_s[g9]").count == 2
        totals = [e for e in bus.events if e.name == "switch/total"]
        assert [e.args["outcome"] for e in totals] == [
            "completed",
            "aborted",
            "completed",
        ]
        # Every generation's total span closed: durations are bounded.
        assert all(e.dur <= 0.2 + 1e-9 for e in totals)

    def test_mid_choreography_join_opens_at_that_phase(self):
        bus = Bus(enabled=True)
        tracker = PhaseTracker(bus.scoped(1))
        # A takeover member learns about the switch at FLUSH.
        tracker.phase((0, 4), "flush")
        tracker.complete((0, 4), duration=0.5)
        phases = [e.name for e in bus.events if e.name.startswith("switch/")]
        assert phases == ["switch/flush", "switch/complete"]


def specs():
    return [
        ProtocolSpec("A", lambda r: [FifoLayer()]),
        ProtocolSpec("B", lambda r: [SequencerLayer()]),
    ]


class TestFleetLifecycleUnderTelemetry:
    def build(self):
        runtime = SimRuntime()
        network = PointToPointNetwork(runtime, 3)
        manager = GroupManager(runtime, network)
        bus = Bus(clock=runtime, enabled=True, max_events=0)
        plane = TelemetryPlane(runtime, bus, TelemetryConfig(window=1.0))
        plane.attach_manager(manager)
        return runtime, manager, plane

    def test_attach_drain_teardown_reattach_same_ports(self):
        runtime, manager, plane = self.build()
        g1 = manager.create_group([0, 1], specs(), initial="A")
        plane.watch_group(g1.group_id, members=2)
        g1.on_deliver(lambda rank, msg: plane.note_delivery(g1.group_id))
        g1.cast(0, "hello")
        runtime.run_for(1.0)

        # Drain first: in-flight traffic settles, the teardown is clean.
        g1.drain()
        runtime.run_for(1.0)
        manager.teardown_group(g1.group_id)
        snap = plane.group_snapshot(g1.group_id)
        assert snap["torn_down"] is True
        assert snap["delivered"] == 2
        assert plane.recorder.captures == []  # clean teardown: no incident

        # Re-attach over the same nodes: a fresh group id, fresh state.
        g2 = manager.create_group([0, 1], specs(), initial="A")
        assert g2.group_id != g1.group_id
        plane.watch_group(g2.group_id, members=2)
        g2.on_deliver(lambda rank, msg: plane.note_delivery(g2.group_id))
        g2.cast(1, "again")
        runtime.run_for(1.0)
        assert plane.group_snapshot(g2.group_id)["delivered"] == 2
        assert plane.group_snapshot(g2.group_id)["torn_down"] is False
        # The old group's totals are untouched by the new generation.
        assert plane.group_snapshot(g1.group_id)["delivered"] == 2

    def test_dirty_teardown_freezes_the_black_box(self):
        runtime, manager, plane = self.build()
        group = manager.create_group([0, 1], specs(), initial="A")
        gid = group.group_id
        plane.watch_group(gid, members=2)
        plane.note_delivery(gid)  # something in the ring to freeze
        # Teardown while STARTED (no drain): in-flight traffic dies.
        manager.teardown_group(gid)
        assert [c.trigger for c in plane.recorder.captures] == [
            "dirty_teardown"
        ]
        assert plane.recorder.captures[0].group == gid

    def test_stray_counts_surface_after_teardown_with_traffic(self):
        runtime, manager, plane = self.build()
        group = manager.create_group([0, 1], specs(), initial="A")
        plane.watch_group(group.group_id, members=2)
        group.cast(0, "doomed")
        # Teardown immediately: the cast is still in flight and must
        # drop as a stray at the port, not hit dead channels.
        manager.teardown_group(group.group_id)
        runtime.run_for(1.0)
        assert plane._stray_drops() > 0
        assert plane.snapshot()["fleet"]["strays"] > 0
