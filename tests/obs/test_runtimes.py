"""The same instrumentation on both runtimes.

The bus stamps from the :class:`Clock` interface, so one set of call
sites must yield deterministic virtual-time traces on ``SimRuntime`` and
monotonic wall-clock traces on ``AsyncioRuntime``.  Wall-clock bounds
are generous (CI machines stall) and the runs stay under ~100 ms.
"""

import pytest

from repro.obs.bus import COMPLETE, Bus
from repro.runtime import AsyncioRuntime, SimRuntime


def nested_spans(runtime, bus, dwell):
    """Open outer/inner spans separated by runtime timers, then drive."""
    outer = bus.span("outer", rank=0)
    inner = {}

    def open_inner():
        inner["span"] = bus.span("inner", rank=0)
        runtime.schedule(dwell, close_inner)

    def close_inner():
        inner["span"].end()
        runtime.schedule(dwell, lambda: outer.end())

    runtime.schedule(dwell, open_inner)
    runtime.run_for(10 * dwell)


class TestSimRuntime:
    def test_span_durations_are_exact_virtual_time(self):
        runtime = SimRuntime()
        bus = Bus(clock=runtime, enabled=True)
        nested_spans(runtime, bus, dwell=0.5)
        by_name = {e.name: e for e in bus.events}
        assert by_name["inner"].dur == pytest.approx(0.5)
        assert by_name["outer"].dur == pytest.approx(1.5)
        assert by_name["inner"].time == pytest.approx(0.5)

    def test_trace_is_deterministic_across_runs(self):
        def run():
            runtime = SimRuntime()
            bus = Bus(clock=runtime, enabled=True)
            nested_spans(runtime, bus, dwell=0.25)
            return [(e.name, e.time, e.dur) for e in bus.events]

        assert run() == run()


class TestAsyncioRuntime:
    def test_spans_use_wall_clock_and_nest(self):
        runtime = AsyncioRuntime()
        try:
            bus = Bus(clock=runtime, enabled=True)
            nested_spans(runtime, bus, dwell=0.01)
        finally:
            runtime.close()
        by_name = {e.name: e for e in bus.events}
        inner, outer = by_name["inner"], by_name["outer"]
        assert inner.kind == COMPLETE and outer.kind == COMPLETE
        # Real time elapsed: durations are positive, inner nests in outer.
        assert inner.dur >= 0.01
        assert outer.dur >= inner.dur
        assert outer.time <= inner.time
        assert inner.time + inner.dur <= outer.time + outer.dur + 1e-6

    def test_schema_matches_sim_runtime(self):
        """Same call sites, same event shape — only the clock differs."""
        sim = SimRuntime()
        sim_bus = Bus(clock=sim, enabled=True)
        nested_spans(sim, sim_bus, dwell=0.01)

        aio = AsyncioRuntime()
        try:
            aio_bus = Bus(clock=aio, enabled=True)
            nested_spans(aio, aio_bus, dwell=0.01)
        finally:
            aio.close()

        def shape(events):
            return [(e.name, e.kind, e.rank, sorted(e.args)) for e in events]

        assert shape(sim_bus.events) == shape(aio_bus.events)
