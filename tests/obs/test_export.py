"""Exporter validity: Perfetto-loadable traces, JSONL, metrics JSON.

Perfetto is strict about the trace-event schema — every record needs
``ph``/``ts``/``pid``, complete spans need ``dur``, instants need a
scope — so these tests validate the shape a viewer actually checks,
plus the routing rules (rank -> pid, switch generation -> tid) the
module promises.
"""

import json

import pytest

from repro.obs.bus import Bus
from repro.obs.export import (
    GLOBAL_PID,
    chrome_trace_events,
    events_to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_metrics,
)
from repro.runtime import SimRuntime


@pytest.fixture
def bus():
    runtime = SimRuntime()
    bus = Bus(clock=runtime, enabled=True)
    span = bus.span("switch/prepare", rank=0, switch=[1, 0])
    runtime.run_until(0.004)
    span.end()
    bus.emit("token/hop", rank=1, kind="PREPARE", to=2, gen=[3, 1])
    bus.emit("net/drop", rank=None, reason="loss")
    return bus


class TestChromeTrace:
    def test_every_record_has_required_keys(self, bus):
        records = chrome_trace_events(bus.events)
        for record in records:
            assert {"name", "ph", "pid", "tid", "ts"} <= set(record)

    def test_span_and_instant_phases(self, bus):
        records = chrome_trace_events(bus.events)
        span = next(r for r in records if r["name"] == "switch/prepare")
        assert span["ph"] == "X"
        assert span["ts"] == pytest.approx(0.0)
        assert span["dur"] == pytest.approx(4000.0)  # seconds -> micros
        hop = next(r for r in records if r["name"] == "token/hop")
        assert hop["ph"] == "i"
        assert hop["s"] == "t"
        assert "dur" not in hop

    def test_rank_routing_one_process_per_rank(self, bus):
        records = chrome_trace_events(bus.events, label="test")
        span = next(r for r in records if r["name"] == "switch/prepare")
        hop = next(r for r in records if r["name"] == "token/hop")
        drop = next(r for r in records if r["name"] == "net/drop")
        assert span["pid"] == 1  # rank 0
        assert hop["pid"] == 2  # rank 1
        assert drop["pid"] == GLOBAL_PID
        names = {
            (r["pid"], r["args"]["name"])
            for r in records
            if r["ph"] == "M" and r["name"] == "process_name"
        }
        assert (GLOBAL_PID, "test global") in names
        assert (1, "test rank 0") in names
        assert (2, "test rank 1") in names

    def test_generation_events_get_their_own_track(self, bus):
        records = chrome_trace_events(bus.events)
        hop = next(r for r in records if r["name"] == "token/hop")
        assert hop["tid"] == 1  # first gen track on that pid
        track = next(
            r
            for r in records
            if r["ph"] == "M"
            and r["name"] == "thread_name"
            and r["pid"] == hop["pid"]
        )
        assert "switch gen" in track["args"]["name"]
        ungenned = next(r for r in records if r["name"] == "switch/prepare")
        assert ungenned["tid"] == 0

    def test_written_file_is_a_valid_json_array(self, bus, tmp_path):
        path = tmp_path / "out.trace.json"
        count = write_chrome_trace(str(path), bus.events)
        loaded = json.loads(path.read_text())
        assert isinstance(loaded, list)
        assert len(loaded) == count
        # Perfetto rejects non-finite/missing ts: every record's ts is a number.
        assert all(isinstance(r["ts"], (int, float)) for r in loaded)

    def test_non_jsonable_args_are_stringified(self):
        bus = Bus(enabled=True)
        bus.emit("weird", payload=object(), nested={"k": (1, 2)})
        (record,) = (
            r for r in chrome_trace_events(bus.events) if r["name"] == "weird"
        )
        json.dumps(record)  # must not raise
        assert record["args"]["nested"]["k"] == [1, 2]


class TestJsonl:
    def test_one_valid_object_per_event(self, bus):
        lines = events_to_jsonl(bus.events)
        assert len(lines) == len(bus.events)
        parsed = [json.loads(line) for line in lines]
        assert [p["name"] for p in parsed] == [e.name for e in bus.events]
        span = parsed[0]
        assert span["kind"] == "X" and "dur" in span
        assert all("dur" not in p for p in parsed[1:])

    def test_write_jsonl_roundtrips(self, bus, tmp_path):
        path = tmp_path / "events.jsonl"
        count = write_jsonl(str(path), bus.events)
        lines = path.read_text().splitlines()
        assert len(lines) == count == len(bus.events)
        for line in lines:
            json.loads(line)


class TestMetricsJson:
    def test_snapshot_with_header_roundtrips(self, tmp_path):
        bus = Bus(enabled=True)
        bus.count("token.hops", 7)
        bus.observe("switch.duration_s", 0.012)
        bus.observe("switch.duration_s", 0.014)
        path = tmp_path / "metrics.json"
        snapshot = write_metrics(
            str(path), bus.metrics, command="run", seed=42
        )
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(snapshot))
        assert loaded["command"] == "run" and loaded["seed"] == 42
        assert loaded["counters"]["token.hops"] == 7
        hist = loaded["histograms"]["switch.duration_s"]
        assert hist["count"] == 2
        for key in ("mean", "p50", "p90", "p99", "min", "max"):
            assert key in hist
