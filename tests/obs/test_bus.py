"""Bus core semantics: events, spans, scoping, and the disabled path.

The disabled fast path is load-bearing — figure-parity fixtures require
a run with instrumentation off to be bit-identical to the seed — so this
file pins down not just what an enabled bus records but what a disabled
bus *doesn't* do: no event allocation, no metrics, no subscribers.
"""

import pytest

from repro.obs.bus import (
    COMPLETE,
    INSTANT,
    NULL_SPAN,
    Bus,
    PhaseTracker,
    default_bus,
    null_scope,
    set_default_bus,
)
from repro.runtime import SimRuntime


@pytest.fixture
def sim_bus():
    runtime = SimRuntime()
    return runtime, Bus(clock=runtime, enabled=True)


class TestEnabledBus:
    def test_emit_records_instant_with_clock_stamp(self, sim_bus):
        runtime, bus = sim_bus
        runtime.run_until(1.5)
        bus.emit("token/hop", rank=2, to=3)
        (event,) = bus.events
        assert event.name == "token/hop"
        assert event.kind == INSTANT
        assert event.time == pytest.approx(1.5)
        assert event.rank == 2
        assert event.dur == 0.0
        assert event.args == {"to": 3}

    def test_span_times_against_virtual_clock(self, sim_bus):
        runtime, bus = sim_bus
        span = bus.span("switch/prepare", rank=0, switch=[0, 1])
        runtime.run_until(0.25)
        dur = span.end(outcome="done")
        assert dur == pytest.approx(0.25)
        (event,) = bus.events
        assert event.kind == COMPLETE
        assert event.time == pytest.approx(0.0)
        assert event.dur == pytest.approx(0.25)
        assert event.args == {"switch": [0, 1], "outcome": "done"}

    def test_span_nesting_records_inner_before_outer(self, sim_bus):
        runtime, bus = sim_bus
        with bus.span("outer", rank=0):
            runtime.run_until(0.1)
            with bus.span("inner", rank=0):
                runtime.run_until(0.3)
            runtime.run_until(0.4)
        names = [e.name for e in bus.events]
        assert names == ["inner", "outer"]
        inner, outer = bus.events
        # Proper nesting: inner is contained in outer's interval.
        assert outer.time <= inner.time
        assert inner.time + inner.dur <= outer.time + outer.dur
        assert inner.dur == pytest.approx(0.2)
        assert outer.dur == pytest.approx(0.4)

    def test_span_end_is_idempotent(self, sim_bus):
        runtime, bus = sim_bus
        span = bus.span("once", rank=0)
        span.end()
        span.end()
        assert len(bus.events) == 1

    def test_subscribers_fire_live(self, sim_bus):
        __, bus = sim_bus
        seen = []
        bus.subscribe(lambda e: seen.append(e.name))
        bus.emit("a")
        bus.emit("b")
        assert seen == ["a", "b"]

    def test_max_events_drops_and_counts(self):
        bus = Bus(enabled=True, max_events=2)
        for i in range(5):
            bus.emit(f"e{i}")
        assert len(bus.events) == 2
        assert bus.metrics.snapshot()["counters"]["obs.events_dropped"] == 3

    def test_clear_keeps_subscribers(self, sim_bus):
        __, bus = sim_bus
        seen = []
        bus.subscribe(lambda e: seen.append(e.name))
        bus.emit("before")
        bus.count("c")
        bus.clear()
        assert bus.events == []
        assert bus.metrics.empty
        bus.emit("after")
        assert seen == ["before", "after"]


class TestDisabledBus:
    def test_records_nothing(self):
        bus = Bus(enabled=False)
        bus.emit("e", rank=0, payload="x")
        bus.count("c")
        bus.gauge("g", 1.0)
        bus.observe("h", 0.5)
        assert bus.events == []
        assert bus.metrics.empty

    def test_span_is_the_shared_null_span(self):
        bus = Bus(enabled=False)
        span = bus.span("anything", rank=3)
        assert span is NULL_SPAN
        assert span.annotate(key="value") is span
        assert span.end() == 0.0
        with span:
            pass
        assert bus.events == []

    def test_subscribers_never_fire(self):
        bus = Bus(enabled=False)
        bus.subscribe(lambda e: pytest.fail("disabled bus invoked subscriber"))
        bus.emit("e")

    def test_default_bus_is_disabled(self):
        assert default_bus().enabled is False

    def test_null_scope_is_safe_everywhere(self):
        scope = null_scope()
        assert not scope.enabled
        scope.emit("e")
        scope.count("c")
        scope.gauge("g", 1.0)
        scope.observe("h", 2.0)
        assert scope.span("s") is NULL_SPAN

    def test_set_default_bus_swaps_and_restores(self):
        replacement = Bus(enabled=True)
        previous = set_default_bus(replacement)
        try:
            assert default_bus() is replacement
        finally:
            set_default_bus(previous)
        assert default_bus() is previous


class TestBusScope:
    def test_events_carry_the_scope_rank(self, sim_bus):
        __, bus = sim_bus
        scope = bus.scoped(4)
        scope.emit("e")
        scope.span("s").end()
        assert [e.rank for e in bus.events] == [4, 4]

    def test_gauges_are_rank_qualified(self, sim_bus):
        __, bus = sim_bus
        bus.scoped(1).gauge("core.buffer_depth", 3)
        bus.scoped(2).gauge("core.buffer_depth", 7)
        gauges = bus.metrics.snapshot()["gauges"]
        assert gauges["core.buffer_depth[r1]"]["value"] == 3
        assert gauges["core.buffer_depth[r2]"]["value"] == 7

    def test_counters_aggregate_across_ranks(self, sim_bus):
        __, bus = sim_bus
        bus.scoped(0).count("token.hops")
        bus.scoped(1).count("token.hops", 2)
        assert bus.metrics.snapshot()["counters"]["token.hops"] == 3

    def test_global_scope_has_no_rank(self, sim_bus):
        __, bus = sim_bus
        scope = bus.scoped(None)
        scope.emit("net/e")
        scope.gauge("net.inflight", 1.0)
        assert bus.events[0].rank is None
        assert "net.inflight" in bus.metrics.snapshot()["gauges"]


class TestPhaseTracker:
    def test_full_lifecycle_records_all_phase_spans(self, sim_bus):
        runtime, bus = sim_bus
        tracker = PhaseTracker(bus.scoped(0))
        switch_id = (1, 0)
        tracker.begin(switch_id, "sequencer", "tokenring")
        runtime.run_until(0.1)
        tracker.phase(switch_id, "switch")
        runtime.run_until(0.3)
        tracker.phase(switch_id, "flush")
        runtime.run_until(0.6)
        tracker.complete(switch_id, runtime.now)

        by_name = {}
        for event in bus.events:
            by_name.setdefault(event.name, []).append(event)
        for name, dur in [
            ("switch/prepare", 0.1),
            ("switch/switch", 0.2),
            ("switch/flush", 0.3),
            ("switch/total", 0.6),
        ]:
            (span,) = by_name[name]
            assert span.kind == COMPLETE
            assert span.dur == pytest.approx(dur)
        assert by_name["switch/total"][0].args["outcome"] == "completed"
        assert len(by_name["switch/complete"]) == 1

        snapshot = bus.metrics.snapshot()
        assert snapshot["counters"]["switch.initiated"] == 1
        assert snapshot["counters"]["switch.completed"] == 1
        for phase in ("prepare", "switch", "flush"):
            assert snapshot["histograms"][f"switch.phase.{phase}_s"]["count"] == 1
        assert snapshot["histograms"]["switch.duration_s"]["count"] == 1

    def test_abort_closes_spans_with_verdict(self, sim_bus):
        runtime, bus = sim_bus
        tracker = PhaseTracker(bus.scoped(0))
        switch_id = (2, 0)
        tracker.begin(switch_id, "a", "b")
        runtime.run_until(0.2)
        tracker.abort(switch_id, "watchdog", "prepare")
        total = next(e for e in bus.events if e.name == "switch/total")
        assert total.args["outcome"] == "aborted"
        assert total.args["reason"] == "watchdog"
        counters = bus.metrics.snapshot()["counters"]
        assert counters["switch.aborted"] == 1
        assert "switch.completed" not in counters

    def test_noop_on_disabled_bus(self):
        tracker = PhaseTracker(null_scope())
        tracker.begin((0, 0), "a", "b")
        tracker.phase((0, 0), "switch")
        tracker.complete((0, 0), 1.0)
        tracker.abort((0, 0), "x", "prepare")
        assert default_bus().events == []
