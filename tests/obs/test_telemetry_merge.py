"""Merging telemetry views: shard rollups and multi-source ``repro top``."""

import json

import pytest

from repro.errors import TelemetryError
from repro.obs.telemetry import merge_payloads, merge_snapshots
from repro.obs.telemetry.top import load_sources, render_top, run_top


def shard_snapshot(gids, t, rate_per_group=10.0, burning=0):
    """A minimal but fully-shaped shard-plane snapshot."""
    delivered = {gid: 100 * gid for gid in gids}
    loads = {}
    for gid in gids:
        rank = str(gid % 2)
        loads[rank] = loads.get(rank, 0) + 1
    return {
        "fleet": {
            "time": t,
            "uptime_s": t,
            "window_s": 1.0,
            "windows_rolled": int(t),
            "groups": len(gids),
            "casts": sum(delivered.values()) // 3,
            "delivered": sum(delivered.values()),
            "rate": rate_per_group * len(gids),
            "rate_cumulative": sum(delivered.values()) / t,
            "switches": len(gids) // 2,
            "aborts": 0,
            "strays": 1,
            "pool": {
                "nodes": len(loads),
                "loads": loads,
                "min": min(loads.values()),
                "max": max(loads.values()),
            },
            "escalations": 1,
            "captures": 0,
            "slo": {
                "targets": [
                    {"name": "delivery-p99", "signal": "delivery_p99_ms"}
                ],
                "alerts": burning,
                "burn_minutes": 0.5 * burning,
                "groups_burning": burning,
            },
        },
        "groups": {
            str(gid): {
                "delivered": delivered[gid],
                "rate": rate_per_group,
                "protocol": "sequencer",
                "switches": 0,
                "aborts": 0,
            }
            for gid in gids
        },
        "fleet_windows": [
            {"t": float(w), "delivered": 10 * len(gids), "rate": 10.0}
            for w in range(1, int(t) + 1)
        ],
    }


class TestMergeSnapshots:
    def test_empty_raises(self):
        with pytest.raises(TelemetryError, match="no snapshots"):
            merge_snapshots([])
        with pytest.raises(TelemetryError, match="no payloads"):
            merge_payloads([])

    def test_single_source_passes_through(self):
        snap = shard_snapshot([1, 2], t=4.0)
        assert merge_snapshots([snap]) == snap

    def test_two_divergent_snapshots(self):
        """Two shards, different group sets, taken at different times."""
        a = shard_snapshot([1, 3], t=4.0, burning=1)
        b = shard_snapshot([2, 5, 8], t=6.0)
        merged = merge_snapshots([a, b])
        fleet = merged["fleet"]
        # Counts sum; clocks take the further-along source.
        assert fleet["delivered"] == (100 + 300) + (200 + 500 + 800)
        assert fleet["time"] == 6.0
        assert fleet["windows_rolled"] == 6
        assert fleet["strays"] == 2
        assert fleet["groups"] == 5
        assert sorted(merged["groups"]) == ["1", "2", "3", "5", "8"]
        # Pool loads sum per rank; SLO targets dedup, burn sums.
        assert fleet["pool"]["loads"] == {"0": 2, "1": 3}
        assert len(fleet["slo"]["targets"]) == 1
        assert fleet["slo"]["groups_burning"] == 1
        assert fleet["slo"]["burn_minutes"] == 0.5
        # Windows align on t and sum: shard a contributes 4, b all 6.
        windows = merged["fleet_windows"]
        assert [w["t"] for w in windows] == [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        assert windows[0]["delivered"] == 20 + 30
        assert windows[5]["delivered"] == 30  # only shard b got this far
        assert fleet["rate_cumulative"] == fleet["delivered"] / 6.0

    def test_group_collision_keeps_fresher_view(self):
        stale = shard_snapshot([4], t=2.0)
        stale["groups"]["4"]["delivered"] = 5
        fresh = shard_snapshot([4], t=3.0)
        merged = merge_snapshots([stale, fresh])
        assert merged["groups"]["4"]["delivered"] == 400
        assert merged["fleet"]["groups"] == 1


class TestMergePayloads:
    def payloads(self):
        return [
            {
                "schema_version": 1,
                "kind": "telemetry",
                "source": "file",
                "snapshot": shard_snapshot([1, 3], t=4.0),
                "escalations": [{"t": 2.5, "group": 3}],
            },
            {
                "schema_version": 1,
                "kind": "telemetry",
                "source": "file",
                "snapshot": shard_snapshot([2], t=6.0),
                "escalations": [{"t": 1.5, "group": 2}],
            },
        ]

    def test_merges_and_rerenders(self):
        merged = merge_payloads(self.payloads(), sources=["a.json", "b.json"])
        assert merged["source"] == "merge"
        assert merged["merged_from"] == 2
        assert merged["sources"] == ["a.json", "b.json"]
        # Escalations interleave in time order across sources.
        assert [e["group"] for e in merged["escalations"]] == [2, 3]
        assert "repro_fleet_delivered_total 600" in merged["prometheus"]

    def test_top_over_two_files(self, tmp_path, capsys):
        paths = []
        for name, payload in zip(("a", "b"), self.payloads()):
            path = tmp_path / f"{name}.json"
            path.write_text(json.dumps(payload))
            paths.append(str(path))
        merged = load_sources(paths)
        frame = render_top(merged)
        assert "groups=3" in frame
        assert "delivered=600" in frame
        # The CLI path: one merged frame, machine-readable.
        lines = []
        code = run_top(paths, once=True, as_json=True, write=lines.append)
        assert code == 0
        payload = json.loads(lines[0])
        assert payload["merged_from"] == 2
        assert payload["snapshot"]["fleet"]["delivered"] == 600

    def test_top_single_source_unchanged(self, tmp_path):
        path = tmp_path / "one.json"
        path.write_text(json.dumps(self.payloads()[0]))
        lines = []
        code = run_top(str(path), once=True, as_json=True, write=lines.append)
        assert code == 0
        assert json.loads(lines[0])["source"] == "file"
