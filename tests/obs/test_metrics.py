"""Edge-case coverage for the fixed-bucket histogram's quantile estimator."""

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestQuantileEdgeCases:
    def test_q_zero_is_the_minimum(self):
        h = Histogram(bounds=(1.0, 10.0, 100.0))
        for v in (3.0, 7.0, 42.0):
            h.observe(v)
        assert h.quantile(0.0) == 3.0

    def test_q_one_is_the_maximum(self):
        h = Histogram(bounds=(1.0, 10.0, 100.0))
        for v in (3.0, 7.0, 42.0):
            h.observe(v)
        assert h.quantile(1.0) == 42.0

    def test_single_sample_has_no_quantiles(self):
        # One observation is not a distribution: every quantile is None
        # (the sample itself stays visible as min/max/mean).
        h = Histogram(bounds=(1.0, 10.0))
        h.observe(4.2)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            assert h.quantile(q) is None
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["min"] == snap["max"] == snap["mean"] == 4.2
        assert "p50" not in snap and "p90" not in snap and "p99" not in snap

    def test_two_samples_bring_the_quantiles_back(self):
        h = Histogram(bounds=(1.0, 10.0))
        h.observe(4.2)
        h.observe(4.2)
        assert h.quantile(0.5) == 4.2
        snap = h.snapshot()
        assert snap["p50"] == snap["p99"] == 4.2

    def test_value_on_a_bucket_edge_lands_in_that_bucket(self):
        # Bounds are inclusive upper edges: observing exactly 10.0 must
        # count in the (1, 10] bucket, not spill into (10, 100].
        h = Histogram(bounds=(1.0, 10.0, 100.0))
        h.observe(10.0)
        h.observe(10.0)  # two samples so the quantile is defined
        assert h.counts[1] == 2
        assert h.counts[2] == 0
        assert h.quantile(0.5) == 10.0

    def test_overflow_bucket_only(self):
        # Everything above the last edge: interpolation must use the
        # tracked min/max, not an unbounded bucket edge.
        h = Histogram(bounds=(1.0, 2.0))
        for v in (50.0, 60.0, 70.0):
            h.observe(v)
        assert h.counts[-1] == 3
        assert h.quantile(0.0) == 50.0
        assert h.quantile(1.0) == 70.0
        assert 50.0 <= h.quantile(0.5) <= 70.0

    def test_quantiles_never_leave_the_observed_range(self):
        h = Histogram()  # DEFAULT_BUCKETS
        samples = [0.0003, 0.0011, 0.004, 0.02, 0.02, 0.095, 1.7, 2.5e4]
        for v in samples:
            h.observe(v)
        for q in (0.0, 0.01, 0.1, 0.5, 0.9, 0.99, 1.0):
            assert min(samples) <= h.quantile(q) <= max(samples)

    def test_quantile_is_monotone_in_q(self):
        h = Histogram(bounds=(1.0, 2.0, 5.0, 10.0))
        for v in (0.5, 1.5, 1.5, 3.0, 4.0, 8.0, 12.0):
            h.observe(v)
        qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0]
        values = [h.quantile(q) for q in qs]
        assert values == sorted(values)

    def test_quantile_out_of_range_rejected(self):
        h = Histogram(bounds=(1.0,))
        h.observe(0.5)
        with pytest.raises(ValueError):
            h.quantile(-0.01)
        with pytest.raises(ValueError):
            h.quantile(1.01)

    def test_empty_histogram_has_no_quantiles(self):
        h = Histogram(bounds=(1.0,))
        assert h.quantile(0.5) is None
        assert h.snapshot() == {"count": 0}


class TestRegistryHistogramBounds:
    def test_custom_bounds_apply_on_first_observation_only(self):
        registry = MetricsRegistry()
        registry.observe("batch.size", 3, bounds=(1.0, 2.0, 5.0))
        registry.observe("batch.size", 4, bounds=(100.0,))  # ignored
        histogram = registry.histogram("batch.size")
        assert histogram.bounds == (1.0, 2.0, 5.0)
        assert histogram.count == 2

    def test_default_bounds_when_unspecified(self):
        registry = MetricsRegistry()
        registry.observe("latency", 0.01)
        assert registry.histogram("latency").bounds == DEFAULT_BUCKETS
