"""End-to-end instrumentation: a real switch run through the bus.

These tests drive the shipped switch demo rather than synthetic
producers, pinning the acceptance contract: an instrumented run records
one complete span per switch phase plus duration percentiles, and an
*uninstrumented* run records nothing anywhere — the process-wide default
bus stays silent no matter how much traffic flows.
"""

import pytest

from repro.obs.bus import Bus, default_bus
from repro.stack.layer import _instrumented_receive
from repro.workloads.switchrun import SwitchRunConfig, run_switch_demo

PHASES = ("prepare", "switch", "flush")


@pytest.fixture(scope="module")
def traced_run():
    bus = Bus(enabled=True)
    result = run_switch_demo(
        SwitchRunConfig(runtime="sim", duration=3.0, seed=42), bus=bus
    )
    return bus, result


class TestInstrumentedRun:
    def test_run_still_passes_its_oracle(self, traced_run):
        __, result = traced_run
        assert result.ok, result.violations

    def test_complete_span_per_switch_phase(self, traced_run):
        bus, __ = traced_run
        for phase in PHASES + ("total",):
            spans = [
                e
                for e in bus.events
                if e.kind == "X" and e.name == f"switch/{phase}"
            ]
            assert len(spans) == 1, f"switch/{phase}: {spans}"
            assert spans[0].dur > 0.0

    def test_switch_duration_histogram_present(self, traced_run):
        # One traced run performs exactly one switch, so the duration
        # histogram has a single sample: min/max carry it, and the
        # quantile keys are legitimately absent (one sample is not a
        # distribution).  Multi-switch runs get p50/p90/p99.
        bus, __ = traced_run
        hists = bus.metrics.snapshot()["histograms"]
        duration = hists["switch.duration_s"]
        assert duration["count"] >= 1
        assert duration["min"] > 0.0 and duration["max"] > 0.0
        if duration["count"] >= 2:
            for key in ("p50", "p90", "p99"):
                assert key in duration
        else:
            assert "p50" not in duration
        for phase in PHASES:
            assert hists[f"switch.phase.{phase}_s"]["count"] >= 1

    def test_hot_seams_all_reported(self, traced_run):
        bus, __ = traced_run
        snapshot = bus.metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["token.hops"] > 0
        assert counters["net.packets_sent"] > 0
        assert counters["net.packets_delivered"] > 0
        assert counters["switch.completed"] == 1
        layer_hists = [
            name
            for name in snapshot["histograms"]
            if name.startswith("layer.") and name.endswith(".deliver_cpu_s")
        ]
        assert layer_hists, "no per-layer deliver latency recorded"


class TestDisabledOverhead:
    def test_uninstrumented_run_records_nothing(self):
        before_events = len(default_bus().events)
        result = run_switch_demo(
            SwitchRunConfig(runtime="sim", duration=3.0, seed=42)
        )
        assert result.ok
        assert len(default_bus().events) == before_events
        assert default_bus().metrics.empty

    def test_disabled_compose_wires_receive_unwrapped(self):
        """The disabled path must not interpose even a thin wrapper."""

        class FakeLayer:
            name = "fake"

            def receive(self, msg):  # pragma: no cover - never called
                pass

        class FakeCtx:
            obs = default_bus().scoped(0)

        layer = FakeLayer()
        wrapped = _instrumented_receive(layer, FakeCtx())
        assert wrapped == layer.receive  # the bound method itself, no wrapper

    def test_enabled_compose_interposes_profiler(self):
        class FakeLayer:
            name = "fake"

            def receive(self, msg):
                pass

        class FakeCtx:
            obs = Bus(enabled=True).scoped(0)

        layer = FakeLayer()
        wrapped = _instrumented_receive(layer, FakeCtx())
        assert wrapped is not layer.receive
        ctx_bus = FakeCtx.obs.bus
        wrapped("msg")
        snapshot = ctx_bus.metrics.snapshot()
        assert snapshot["counters"]["layer.fake.delivers"] == 1
        assert snapshot["histograms"]["layer.fake.deliver_cpu_s"]["count"] == 1
