"""The artifact validators themselves are load-bearing CI gates, so
they get the same treatment as any other code: each one must accept a
known-good artifact and *reject* truncated or regressed ones.  A
validator that waves everything through would let a broken benchmark or
scenario sweep sail past CI.
"""

import copy
import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
SCRIPTS = REPO / "scripts"
RESULTS = REPO / "benchmarks" / "results"


def load_validator(name):
    spec = importlib.util.spec_from_file_location(name, SCRIPTS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


check_obs = load_validator("check_obs")
check_scale = load_validator("check_scale")
check_micro = load_validator("check_micro")
check_scenarios = load_validator("check_scenarios")
check_fleet = load_validator("check_fleet")
check_telemetry = load_validator("check_telemetry")


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


# ----------------------------------------------------------------------
# Shared: usage errors exit 2, unreadable artifacts exit 1
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "validator", [check_scale, check_micro, check_scenarios, check_fleet]
)
def test_usage_error_exits_two(validator, capsys):
    assert validator.main(["prog"]) == 2
    assert validator.main(["prog", "a", "b", "c"]) == 2
    capsys.readouterr()


def test_obs_usage_error_exits_two(capsys):
    assert check_obs.main(["prog"]) == 2
    assert check_obs.main(["prog", "only-one"]) == 2
    capsys.readouterr()


@pytest.mark.parametrize(
    "validator", [check_scale, check_micro, check_scenarios, check_fleet]
)
def test_missing_artifact_exits_one(validator, tmp_path, capsys):
    assert validator.main(["prog", str(tmp_path / "nope.json")]) == 1
    capsys.readouterr()


# ----------------------------------------------------------------------
# check_obs: trace + metrics from a real traced run
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def obs_artifacts(tmp_path_factory):
    """One real traced switch on the sim runtime."""
    import repro.cli as cli

    tmp = tmp_path_factory.mktemp("obs")
    trace = tmp / "out.trace.json"
    metrics = tmp / "metrics.json"
    code = cli.main(
        ["run", "--runtime", "sim", "--duration", "3", "--switch-at", "1",
         "--seed", "42", "--trace", str(trace), "--metrics", str(metrics)]
    )
    assert code == 0
    return trace, metrics


def test_obs_accepts_real_run(obs_artifacts, capsys):
    trace, metrics = obs_artifacts
    assert check_obs.main(["prog", str(trace), str(metrics)]) == 0
    assert "all observability checks passed" in capsys.readouterr().out


def test_obs_rejects_trace_without_switch_spans(
    obs_artifacts, tmp_path, capsys
):
    trace, metrics = obs_artifacts
    records = [
        r
        for r in json.loads(trace.read_text())
        if not str(r.get("name", "")).startswith("switch/")
    ]
    broken = write(tmp_path, "trace.json", records)
    assert check_obs.main(["prog", broken, str(metrics)]) == 1
    assert "no complete" in capsys.readouterr().out


def test_obs_rejects_metrics_without_percentiles(
    obs_artifacts, tmp_path, capsys
):
    trace, metrics = obs_artifacts
    snapshot = json.loads(metrics.read_text())
    # A multi-sample histogram must carry its quantiles; claim two
    # observations without them and the validator has to complain.
    hist = snapshot["histograms"]["switch.duration_s"]
    hist["count"] = 2
    hist.pop("p99", None)
    broken = write(tmp_path, "metrics.json", snapshot)
    assert check_obs.main(["prog", str(trace), broken]) == 1
    assert "lacks p99" in capsys.readouterr().out


def test_obs_accepts_single_sample_switch_histogram(
    obs_artifacts, capsys
):
    # One switch -> count 1 -> no quantiles, by the Histogram contract.
    # The validator accepts that, but demands min/max instead.
    trace, metrics = obs_artifacts
    snapshot = json.loads(metrics.read_text())
    duration = snapshot["histograms"]["switch.duration_s"]
    if duration["count"] < 2:
        assert "p99" not in duration
        assert "min" in duration and "max" in duration
    assert check_obs.main(["prog", str(trace), str(metrics)]) == 0
    capsys.readouterr()


def test_obs_rejects_truncated_trace(obs_artifacts, tmp_path, capsys):
    __, metrics = obs_artifacts
    broken = tmp_path / "trace.json"
    broken.write_text("[{\"name\": \"x\"")  # cut mid-record
    assert check_obs.main(["prog", str(broken), str(metrics)]) == 1
    capsys.readouterr()


# ----------------------------------------------------------------------
# check_scale: synthetic artifact that meets the documented contract
# ----------------------------------------------------------------------
def good_scale_artifact():
    def point(protocol, size, batch):
        return {
            "protocol": protocol,
            "group_size": size,
            "max_batch": batch,
            "offered_msgs_per_s": 500.0,
            "delivered_msgs_per_s": 480.0,
            "mean_latency_ms": 4.0,
            "p90_latency_ms": 8.0,
            "latency_samples": 900,
            "wire_frames": 1200,
            "medium_utilization": 0.4,
            "rank0_cpu_utilization": 0.3,
            "batching": {"batches": 0 if batch == 1 else 40},
        }

    return {
        "benchmark": "bench_scale",
        "schema_version": 1,
        "config": {"seed": 42},
        "points": [
            point(protocol, size, batch)
            for protocol in ("sequencer", "tokenring")
            for size in (10, 50)
            for batch in (1, 8)
        ],
        "switch_runs": [
            {
                "group_size": 50,
                "max_batch": batch,
                "switch_completed": True,
                "switch_duration_ms": 12.0,
                "all_on_target": True,
                "members_agree_on_delivery_count": True,
            }
            for batch in (1, 8)
        ],
        "engine_uplift": {
            "group_size": 50,
            "deterministic_parity": True,
            "delivered_msgs_per_s": 480.0,
            "heap_wall_s": 0.33,
            "wheel_wall_s": 0.28,
            "heap_delivered_per_wall_s": 101818.2,
            "wheel_delivered_per_wall_s": 120000.0,
            "speedup": 1.179,
            "threshold": 1.02,
            "pass": True,
        },
        "acceptance": {"group_size": 50, "speedup": 3.2, "pass": True},
    }


def test_scale_accepts_good_artifact(tmp_path, capsys):
    path = write(tmp_path, "scale.json", good_scale_artifact())
    assert check_scale.main(["prog", path]) == 0
    assert "all scale-benchmark checks passed" in capsys.readouterr().out


def test_scale_rejects_regressed_acceptance(tmp_path, capsys):
    artifact = good_scale_artifact()
    artifact["acceptance"] = {"group_size": 50, "speedup": 1.4, "pass": False}
    path = write(tmp_path, "scale.json", artifact)
    assert check_scale.main(["prog", path]) == 1
    out = capsys.readouterr().out
    assert "below the 2x bar" in out


def test_scale_rejects_single_protocol_sweep(tmp_path, capsys):
    artifact = good_scale_artifact()
    artifact["points"] = [
        p for p in artifact["points"] if p["protocol"] == "sequencer"
    ]
    path = write(tmp_path, "scale.json", artifact)
    assert check_scale.main(["prog", path]) == 1
    assert "protocols covered" in capsys.readouterr().out


def test_scale_rejects_truncated_points(tmp_path, capsys):
    artifact = good_scale_artifact()
    for point in artifact["points"]:
        del point["delivered_msgs_per_s"]
    path = write(tmp_path, "scale.json", artifact)
    assert check_scale.main(["prog", path]) == 1
    assert "missing keys" in capsys.readouterr().out


def test_scale_rejects_failed_switch_run(tmp_path, capsys):
    artifact = good_scale_artifact()
    artifact["switch_runs"][0]["all_on_target"] = False
    path = write(tmp_path, "scale.json", artifact)
    assert check_scale.main(["prog", path]) == 1
    assert "all_on_target" in capsys.readouterr().out


def test_scale_rejects_missing_engine_uplift(tmp_path, capsys):
    artifact = good_scale_artifact()
    del artifact["engine_uplift"]
    path = write(tmp_path, "scale.json", artifact)
    assert check_scale.main(["prog", path]) == 1
    assert "engine_uplift: missing" in capsys.readouterr().out


def test_scale_rejects_engine_parity_break(tmp_path, capsys):
    # A wheel run that diverges from the heap reference is a corruption
    # of the engine swap, no matter how fast it went.
    artifact = good_scale_artifact()
    artifact["engine_uplift"]["deterministic_parity"] = False
    path = write(tmp_path, "scale.json", artifact)
    assert check_scale.main(["prog", path]) == 1
    assert "diverged" in capsys.readouterr().out


def test_scale_rejects_engine_regression(tmp_path, capsys):
    artifact = good_scale_artifact()
    artifact["engine_uplift"]["speedup"] = 0.97
    artifact["engine_uplift"]["pass"] = False
    path = write(tmp_path, "scale.json", artifact)
    assert check_scale.main(["prog", path]) == 1
    assert "below its 1.02x bar" in capsys.readouterr().out


def test_scale_rejects_lowered_engine_bar(tmp_path, capsys):
    # Quietly dropping the artifact's own threshold must not help: the
    # floor is pinned in the validator.
    artifact = good_scale_artifact()
    artifact["engine_uplift"]["threshold"] = 0.5
    path = write(tmp_path, "scale.json", artifact)
    assert check_scale.main(["prog", path]) == 1
    assert "pinned 1.02x bar" in capsys.readouterr().out


# ----------------------------------------------------------------------
# check_micro: the checked-in pinned artifact is the known-good input
# ----------------------------------------------------------------------
def micro_artifact():
    return json.loads((RESULTS / "micro.json").read_text())


def test_micro_accepts_checked_in_artifact(capsys):
    assert check_micro.main(["prog", str(RESULTS / "micro.json")]) == 0
    assert "all hot-path microbenchmark checks" in capsys.readouterr().out


def test_micro_rejects_regressed_kernel(tmp_path, capsys):
    artifact = micro_artifact()
    kernel = artifact["kernels"]["header_hop"]
    kernel["speedup"] = kernel["threshold"] / 2
    kernel["pass"] = False
    path = write(tmp_path, "micro.json", artifact)
    assert check_micro.main(["prog", path]) == 1
    assert "below its" in capsys.readouterr().out


def test_micro_rejects_missing_kernel(tmp_path, capsys):
    artifact = micro_artifact()
    del artifact["kernels"]["codec_roundtrip"]
    path = write(tmp_path, "micro.json", artifact)
    assert check_micro.main(["prog", path]) == 1
    assert "codec_roundtrip" in capsys.readouterr().out


def test_micro_rejects_lowered_bar(tmp_path, capsys):
    # A "passing" artifact whose threshold was quietly dropped below the
    # pinned floor must still fail: the bars live in the validator.
    artifact = micro_artifact()
    kernel = artifact["kernels"]["multicast_fanout"]
    kernel["threshold"] = 0.5
    path = write(tmp_path, "micro.json", artifact)
    assert check_micro.main(["prog", path]) == 1
    assert "pinned" in capsys.readouterr().out


def test_micro_rejects_regressed_timer_churn(tmp_path, capsys):
    # The wheel's 2x bar over the frozen heap engine is pinned.
    artifact = micro_artifact()
    kernel = artifact["kernels"]["timer_churn"]
    kernel["speedup"] = 1.4
    kernel["pass"] = False
    path = write(tmp_path, "micro.json", artifact)
    assert check_micro.main(["prog", path]) == 1
    assert "timer_churn" in capsys.readouterr().out


def test_micro_rejects_missing_decode_fanin_fields(tmp_path, capsys):
    artifact = micro_artifact()
    del artifact["kernels"]["decode_fanin"]["frames"]
    path = write(tmp_path, "micro.json", artifact)
    assert check_micro.main(["prog", path]) == 1
    assert "decode_fanin" in capsys.readouterr().out


def test_micro_rejects_leaky_pooled_deliver(tmp_path, capsys):
    # More than one steady-state shell means the recycle loop leaked
    # (or refused) shells — the kernel's soundness claim, not its
    # timing, is what gates here.
    artifact = micro_artifact()
    artifact["kernels"]["pooled_deliver"]["steady_state_shells"] = 3
    path = write(tmp_path, "micro.json", artifact)
    assert check_micro.main(["prog", path]) == 1
    assert "exactly one" in capsys.readouterr().out


# ----------------------------------------------------------------------
# check_scenarios: the checked-in sweep artifact is the known-good input
# ----------------------------------------------------------------------
def scenarios_artifact():
    return json.loads((RESULTS / "scenarios.json").read_text())


def test_scenarios_accepts_checked_in_artifact(capsys):
    assert (
        check_scenarios.main(["prog", str(RESULTS / "scenarios.json")]) == 0
    )
    assert "all scenario-sweep checks passed" in capsys.readouterr().out


def test_scenarios_rejects_failed_verdict(tmp_path, capsys):
    artifact = scenarios_artifact()
    verdict = artifact["scenarios"]["burst_loss"]
    verdict["ok"] = False
    verdict["violations"] = ["member 2 delivered out of order"]
    path = write(tmp_path, "scenarios.json", artifact)
    assert check_scenarios.main(["prog", path]) == 1
    assert "FAILED" in capsys.readouterr().out


def test_scenarios_rejects_shrunk_catalog(tmp_path, capsys):
    artifact = scenarios_artifact()
    keep = sorted(artifact["scenarios"])[:4]
    artifact["scenarios"] = {
        name: artifact["scenarios"][name] for name in keep
    }
    path = write(tmp_path, "scenarios.json", artifact)
    assert check_scenarios.main(["prog", path]) == 1
    assert "catalog coverage" in capsys.readouterr().out


def test_scenarios_rejects_truncated_verdict(tmp_path, capsys):
    artifact = scenarios_artifact()
    del artifact["scenarios"]["high_latency"]["switch_duration_ms"]
    path = write(tmp_path, "scenarios.json", artifact)
    assert check_scenarios.main(["prog", path]) == 1
    assert "missing keys" in capsys.readouterr().out


def test_scenarios_rejects_wrong_final_protocol(tmp_path, capsys):
    artifact = scenarios_artifact()
    finals = artifact["scenarios"]["congestion_collapse"]["final_protocols"]
    finals[next(iter(finals))] = "sequencer"
    path = write(tmp_path, "scenarios.json", artifact)
    assert check_scenarios.main(["prog", path]) == 1
    assert "did not settle" in capsys.readouterr().out


def test_scenarios_rejects_phantom_switch(tmp_path, capsys):
    # A stability verdict that claims oracle decisions is inconsistent.
    artifact = scenarios_artifact()
    verdict = artifact["scenarios"]["baseline_steady"]
    assert verdict["switches_completed"] == 0
    verdict["decisions"] = [[1.0, "sequencer", "tokenring"]]
    path = write(tmp_path, "scenarios.json", artifact)
    assert check_scenarios.main(["prog", path]) == 1
    assert "stability scenario recorded oracle decisions" in (
        capsys.readouterr().out
    )


def test_scenarios_rejects_wrong_suite(tmp_path, capsys):
    artifact = scenarios_artifact()
    artifact["suite"] = "benchmarks"
    path = write(tmp_path, "scenarios.json", artifact)
    assert check_scenarios.main(["prog", path]) == 1
    assert "suite name" in capsys.readouterr().out


# ----------------------------------------------------------------------
# check_fleet: the checked-in fleet sweep is the known-good input
# ----------------------------------------------------------------------
def fleet_artifact():
    return json.loads((RESULTS / "fleet.json").read_text())


def test_fleet_accepts_checked_in_artifact(capsys):
    assert check_fleet.main(["prog", str(RESULTS / "fleet.json")]) == 0
    out = capsys.readouterr().out
    assert "all fleet-benchmark checks passed" in out
    assert "hot switched" in out


def test_fleet_rejects_cold_group_switch(tmp_path, capsys):
    artifact = fleet_artifact()
    run = artifact["runs"]["sim"]
    run["cold_switched"] = 2
    path = write(tmp_path, "fleet.json", artifact)
    assert check_fleet.main(["prog", path]) == 1
    assert "cold groups switched" in capsys.readouterr().out


def test_fleet_rejects_unswitched_hot_group(tmp_path, capsys):
    artifact = fleet_artifact()
    run = artifact["runs"]["sim"]
    run["hot_switched"] = run["hot_groups"] - 1
    path = write(tmp_path, "fleet.json", artifact)
    assert check_fleet.main(["prog", path]) == 1
    assert "hot groups escalated" in capsys.readouterr().out


def test_fleet_rejects_truncated_run(tmp_path, capsys):
    artifact = fleet_artifact()
    del artifact["runs"]["sim"]["stray_packets"]
    path = write(tmp_path, "fleet.json", artifact)
    assert check_fleet.main(["prog", path]) == 1
    assert "missing keys" in capsys.readouterr().out


def test_fleet_rejects_truncated_per_group(tmp_path, capsys):
    artifact = fleet_artifact()
    run = artifact["runs"]["sim"]
    run["per_group"] = run["per_group"][:10]
    path = write(tmp_path, "fleet.json", artifact)
    assert check_fleet.main(["prog", path]) == 1
    assert "reports for" in capsys.readouterr().out


def test_fleet_rejects_full_profile_below_scale_floor(tmp_path, capsys):
    # A "full" artifact must actually prove the 1000-group/100k-client
    # claim; shrinking the sweep while keeping the label must fail.
    artifact = fleet_artifact()
    run = artifact["runs"]["sim"]
    run["groups"] = 64
    run["clients"] = 6_400
    run["per_group"] = run["per_group"][:64]
    run["hot_groups"] = run["hot_switched"] = sum(
        1 for r in run["per_group"] if r["hot"]
    )
    path = write(tmp_path, "fleet.json", artifact)
    assert check_fleet.main(["prog", path]) == 1
    out = capsys.readouterr().out
    assert "below the full-profile" in out


def test_fleet_rejects_missing_sim_run(tmp_path, capsys):
    artifact = fleet_artifact()
    del artifact["runs"]["sim"]
    path = write(tmp_path, "fleet.json", artifact)
    assert check_fleet.main(["prog", path]) == 1
    assert "required 'sim' run" in capsys.readouterr().out


def test_fleet_rejects_failed_verdict(tmp_path, capsys):
    artifact = fleet_artifact()
    artifact["pass"] = False
    path = write(tmp_path, "fleet.json", artifact)
    assert check_fleet.main(["prog", path]) == 1
    assert "top-level verdict" in capsys.readouterr().out


def test_fleet_rejects_sequencer_stuck_hot_group(tmp_path, capsys):
    artifact = fleet_artifact()
    run = artifact["runs"]["sim"]
    hot = next(r for r in run["per_group"] if r["hot"])
    hot["final_protocol"] = "sequencer"
    hot["switched"] = False
    path = write(tmp_path, "fleet.json", artifact)
    assert check_fleet.main(["prog", path]) == 1
    assert "hot group ended on 'sequencer'" in capsys.readouterr().out


# ----------------------------------------------------------------------
# check_fleet, sharded mode: the checked-in scaling sweep is known-good
# ----------------------------------------------------------------------
def sharded_artifact():
    return json.loads((RESULTS / "fleet_sharded.json").read_text())


def sharded_paths(tmp_path, artifact):
    return (
        write(tmp_path, "fleet_sharded.json", artifact),
        str(RESULTS / "fleet.json"),
    )


def test_sharded_accepts_checked_in_artifact(capsys):
    code = check_fleet.main(
        [
            "prog",
            str(RESULTS / "fleet_sharded.json"),
            str(RESULTS / "fleet.json"),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "all sharded-fleet checks passed" in out
    assert "speedup" in out


def test_sharded_accepts_without_baseline(capsys):
    assert (
        check_fleet.main(["prog", str(RESULTS / "fleet_sharded.json")]) == 0
    )


def test_sharded_rejects_regressed_speedup(tmp_path, capsys):
    artifact = sharded_artifact()
    # Inflate the top run's recorded critical path; the validator must
    # recompute the speedup from the points, not trust speedup_at_max.
    for point in artifact["scaling"]["points"]:
        if point["shards"] == max(artifact["shard_counts"]):
            point["critical_path_cpu_s"] = (
                artifact["scaling"]["points"][0]["critical_path_cpu_s"]
            )
    path, baseline = sharded_paths(tmp_path, artifact)
    assert check_fleet.main(["prog", path, baseline]) == 1
    assert "below the full-profile floor" in capsys.readouterr().out


def test_sharded_rejects_partition_parity_break(tmp_path, capsys):
    artifact = sharded_artifact()
    artifact["runs"]["shards4"]["per_group"][7]["delivered"] += 1
    path, baseline = sharded_paths(tmp_path, artifact)
    assert check_fleet.main(["prog", path, baseline]) == 1
    assert "partition parity" in capsys.readouterr().out


def test_sharded_rejects_baseline_drift(tmp_path, capsys):
    # All shard counts agree with each other but not with the
    # in-process artifact: the sharded engine has drifted.
    artifact = sharded_artifact()
    for run in artifact["runs"].values():
        run["per_group"][0]["delivered"] += 1
        run["delivered"] += 1
    path, baseline = sharded_paths(tmp_path, artifact)
    assert check_fleet.main(["prog", path, baseline]) == 1
    assert "differ from the in-process baseline" in capsys.readouterr().out


def test_sharded_rejects_shrunk_sweep(tmp_path, capsys):
    artifact = sharded_artifact()
    artifact["shard_counts"] = [1, 2]
    del artifact["runs"]["shards4"]
    artifact["scaling"]["points"] = artifact["scaling"]["points"][:2]
    path, baseline = sharded_paths(tmp_path, artifact)
    assert check_fleet.main(["prog", path, baseline]) == 1
    assert "must reach 4" in capsys.readouterr().out


def test_sharded_rejects_bad_shard_stats(tmp_path, capsys):
    artifact = sharded_artifact()
    artifact["runs"]["shards2"]["shard_stats"] = artifact["runs"]["shards2"][
        "shard_stats"
    ][:1]
    path, baseline = sharded_paths(tmp_path, artifact)
    assert check_fleet.main(["prog", path, baseline]) == 1
    assert "entries for 2 shards" in capsys.readouterr().out


def test_sharded_rejects_cold_switch_inside_a_shard(tmp_path, capsys):
    artifact = sharded_artifact()
    artifact["runs"]["shards1"]["cold_switched"] = 1
    path, baseline = sharded_paths(tmp_path, artifact)
    assert check_fleet.main(["prog", path, baseline]) == 1
    assert "cold groups switched" in capsys.readouterr().out


# ----------------------------------------------------------------------
# check_telemetry: synthetic payload/blackbox/overhead fixtures
# ----------------------------------------------------------------------
def good_telemetry_payload():
    def group(gid, delivered, protocol="sequencer"):
        return {
            "group": gid,
            "protocol": protocol,
            "members": 3,
            "casts": delivered,
            "delivered": delivered,
            "rate": float(delivered),
            "switches": 0,
            "aborts": 0,
            "slo": {"ok": True, "burning": [], "burn_minutes": 0.0},
        }

    prometheus = "".join(
        f"# TYPE {series} gauge\n{series} 1\n"
        for series in check_telemetry.PROM_SERIES
    )
    return {
        "schema_version": 1,
        "kind": "telemetry",
        "source": "poll",
        "snapshot": {
            "fleet": {
                "time": 8.0,
                "uptime_s": 8.0,
                "window_s": 1.0,
                "windows_rolled": 8,
                "groups": 2,
                "casts": 30,
                "delivered": 30,
                "rate": 4.0,
                "rate_cumulative": 3.75,
                "switches": 0,
                "aborts": 0,
                "strays": 0,
                "pool": {"nodes": 2, "min": 1, "max": 1},
                "escalations": 1,
                "captures": 0,
                "slo": {
                    "targets": [],
                    "alerts": 0,
                    "burn_minutes": 0.0,
                    "groups_burning": 0,
                },
            },
            "groups": {"0": group(0, 10), "1": group(1, 20)},
            "fleet_windows": [{"t": 8.0, "delivered": 4}],
        },
        "prometheus": prometheus,
        "escalations": [
            {
                "group_id": 1,
                "signal": 55.0,
                "snapshot": {"group": 1, "window_partial": {"delivered": 9}},
            }
        ],
    }


def good_blackbox_lines():
    return [
        {"type": "capture", "trigger": "switch_abort", "group": 3,
         "time": 2.5, "records": 2, "detail": "stalled"},
        {"type": "record", "t": 2.1, "name": "cast", "group": 3},
        {"type": "record", "t": 2.4, "name": "switch/abort", "group": 3},
    ]


def write_blackbox(tmp_path, lines):
    path = tmp_path / "blackbox.jsonl"
    path.write_text("".join(json.dumps(line) + "\n" for line in lines))
    return str(path)


def good_overhead_artifact():
    return {
        "benchmark": "telemetry_overhead",
        "schema_version": 1,
        "off": {"best_s": 1.00, "delivered": 500, "casts": 510},
        "on": {"best_s": 1.02, "delivered": 500, "casts": 510},
        "overhead_pct": 2.0,
        "threshold_pct": 5.0,
        "identical_outcome": True,
    }


def test_telemetry_usage_error_exits_two(capsys):
    assert check_telemetry.main(["prog"]) == 2
    assert check_telemetry.main(["prog", "a", "b", "c"]) == 2
    capsys.readouterr()


def test_telemetry_missing_artifact_exits_one(tmp_path, capsys):
    nope = str(tmp_path / "nope.json")
    assert check_telemetry.main(["prog", nope]) == 1
    assert check_telemetry.main(["prog", "--blackbox", nope]) == 1
    assert check_telemetry.main(["prog", "--overhead", nope]) == 1
    assert "cannot load" in capsys.readouterr().out


def test_telemetry_accepts_good_payload(tmp_path, capsys):
    path = write(tmp_path, "tele.json", good_telemetry_payload())
    assert check_telemetry.main(["prog", path]) == 0
    assert "all telemetry checks passed" in capsys.readouterr().out


def test_telemetry_checks_artifact_agreement(tmp_path, capsys):
    tele = write(tmp_path, "tele.json", good_telemetry_payload())
    fleet = write(tmp_path, "fleet.json", {"delivered": 30})
    assert check_telemetry.main(["prog", tele, fleet]) == 0
    assert "within 1%" in capsys.readouterr().out
    drifted = write(tmp_path, "drift.json", {"delivered": 60})
    assert check_telemetry.main(["prog", tele, drifted]) == 1
    assert "drift" in capsys.readouterr().out


def test_telemetry_rejects_inconsistent_group_totals(tmp_path, capsys):
    payload = good_telemetry_payload()
    payload["snapshot"]["groups"]["1"]["delivered"] = 5
    path = write(tmp_path, "tele.json", payload)
    assert check_telemetry.main(["prog", path]) == 1
    assert "sums to" in capsys.readouterr().out


def test_telemetry_rejects_unjustified_escalation(tmp_path, capsys):
    payload = good_telemetry_payload()
    del payload["escalations"][0]["snapshot"]
    path = write(tmp_path, "tele.json", payload)
    assert check_telemetry.main(["prog", path]) == 1
    assert "no snapshot" in capsys.readouterr().out


def test_telemetry_rejects_missing_prometheus_series(tmp_path, capsys):
    payload = good_telemetry_payload()
    payload["prometheus"] = payload["prometheus"].replace(
        "repro_slo_burn_minutes", "repro_slo_burn_hours"
    )
    path = write(tmp_path, "tele.json", payload)
    assert check_telemetry.main(["prog", path]) == 1
    assert "repro_slo_burn_minutes missing" in capsys.readouterr().out


def test_telemetry_rejects_truncated_fleet_snapshot(tmp_path, capsys):
    payload = good_telemetry_payload()
    del payload["snapshot"]["fleet"]["pool"]
    path = write(tmp_path, "tele.json", payload)
    assert check_telemetry.main(["prog", path]) == 1
    assert "missing keys" in capsys.readouterr().out


def test_telemetry_accepts_good_blackbox(tmp_path, capsys):
    path = write_blackbox(tmp_path, good_blackbox_lines())
    assert check_telemetry.main(["prog", "--blackbox", path]) == 0
    assert "1 capture(s)" in capsys.readouterr().out


def test_telemetry_rejects_truncated_blackbox(tmp_path, capsys):
    path = write_blackbox(tmp_path, good_blackbox_lines()[:-1])
    assert check_telemetry.main(["prog", "--blackbox", path]) == 1
    assert "record lines" in capsys.readouterr().out


def test_telemetry_rejects_empty_blackbox(tmp_path, capsys):
    path = write_blackbox(tmp_path, [])
    assert check_telemetry.main(["prog", "--blackbox", path]) == 1
    assert "no lines" in capsys.readouterr().out


def test_telemetry_rejects_blackbox_group_mismatch(tmp_path, capsys):
    lines = good_blackbox_lines()
    lines[2]["group"] = 99
    path = write_blackbox(tmp_path, lines)
    assert check_telemetry.main(["prog", "--blackbox", path]) == 1
    assert "group differs" in capsys.readouterr().out


def test_telemetry_accepts_good_overhead(tmp_path, capsys):
    path = write(tmp_path, "overhead.json", good_overhead_artifact())
    assert check_telemetry.main(["prog", "--overhead", path]) == 0
    assert "budget 5.00%" in capsys.readouterr().out


def test_telemetry_rejects_blown_overhead_budget(tmp_path, capsys):
    artifact = good_overhead_artifact()
    artifact["overhead_pct"] = 9.3
    path = write(tmp_path, "overhead.json", artifact)
    assert check_telemetry.main(["prog", "--overhead", path]) == 1
    assert "exceeds the pinned" in capsys.readouterr().out


def test_telemetry_rejects_changed_outcome(tmp_path, capsys):
    artifact = good_overhead_artifact()
    artifact["identical_outcome"] = False
    path = write(tmp_path, "overhead.json", artifact)
    assert check_telemetry.main(["prog", "--overhead", path]) == 1
    assert "must be inert" in capsys.readouterr().out


def test_mutations_do_not_leak_between_tests():
    # Paranoia: the fixtures above re-read from disk each time, so the
    # checked-in artifacts must still validate at the end of the module.
    assert copy.deepcopy(micro_artifact())["pass"] is True
    assert all(
        v["ok"] for v in scenarios_artifact()["scenarios"].values()
    )
    assert fleet_artifact()["pass"] is True
