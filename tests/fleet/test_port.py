"""NodePort: one shared network attach per node, routed by group id."""

import pytest

from repro.errors import StackError
from repro.fleet import NodePort
from repro.net.ptp import PointToPointNetwork
from repro.runtime.sim_runtime import SimRuntime
from repro.stack.membership import Group
from repro.stack.message import Message


def make_net(nodes=3):
    runtime = SimRuntime()
    return runtime, PointToPointNetwork(runtime, nodes)


def make_msg(sender=0, dest=None, body="x"):
    return Message(sender=sender, mid=(sender, 0), body=body, body_size=8,
                   dest=dest)


class TestRegistry:
    def test_double_register_raises(self):
        __, net = make_net()
        port = NodePort(net, 0)
        port.register(1, Group([0, 1]))
        with pytest.raises(StackError, match="already registered"):
            port.register(1, Group([0, 1]))

    def test_non_member_register_raises(self):
        __, net = make_net()
        port = NodePort(net, 0)
        with pytest.raises(StackError, match="not a member"):
            port.register(1, Group([1, 2]))

    def test_unregister_unknown_raises(self):
        __, net = make_net()
        port = NodePort(net, 0)
        with pytest.raises(StackError, match="not registered"):
            port.unregister(9)

    def test_groups_snapshot(self):
        __, net = make_net()
        port = NodePort(net, 0)
        group = Group([0, 1])
        port.register(1, group)
        assert port.groups == {1: group}
        port.unregister(1)
        assert port.groups == {}


class TestRouting:
    def test_send_for_unregistered_group_raises(self):
        __, net = make_net()
        port = NodePort(net, 0)
        with pytest.raises(StackError, match="unregistered group"):
            port.mux.channel(3, group=1).send(make_msg(dest=(1,)))

    def test_round_trip_between_ports(self):
        runtime, net = make_net()
        group = Group([0, 1])
        a, b = NodePort(net, 0), NodePort(net, 1)
        a.register(1, group)
        b.register(1, group)
        got = []
        b.mux.channel(3, group=1).on_deliver(got.append)
        a.mux.channel(3, group=1).send(make_msg(dest=(1,)))
        runtime.run_for(1.0)
        assert len(got) == 1
        assert got[0].body == "x"
        assert b.stats.get("received") == 1

    def test_multicast_resolves_group_membership(self):
        runtime, net = make_net()
        group = Group([0, 1, 2])
        ports = {n: NodePort(net, n) for n in group}
        for port in ports.values():
            port.register(1, group)
        got = {n: [] for n in group}
        for n, port in ports.items():
            port.mux.channel(3, group=1).on_deliver(got[n].append)
        # dest=None multicasts to the *registered group's* members.
        ports[0].mux.channel(3, group=1).send(make_msg(dest=None))
        runtime.run_for(1.0)
        assert [len(got[n]) for n in group] == [1, 1, 1]

    def test_wrong_shard_frame_is_a_counted_stray(self):
        # A shard's ports host only its hash slice; a frame for a group
        # homed elsewhere (a supervisor routing bug, or a replayed
        # capture from a different shard count) must be dropped and
        # *counted* — never delivered, never fatal.
        from repro.fleet.sharding import shard_of

        runtime, net = make_net()
        group = Group([0, 1])
        mine, foreign = 1, 2
        assert shard_of(mine, 2) != shard_of(foreign, 2)
        a, b = NodePort(net, 0), NodePort(net, 1)
        for port in (a, b):
            port.register(mine, group)
        got = []
        b.mux.channel(3, group=mine).on_deliver(got.append)
        # Port a *does* host the foreign group (it is the misrouting
        # sender); port b does not.
        a.register(foreign, group)
        a.mux.channel(3, group=foreign).send(make_msg(dest=(1,)))
        a.mux.channel(3, group=mine).send(make_msg(dest=(1,)))
        runtime.run_for(1.0)
        # Its own group still flows; the foreign frame is a stray.
        assert len(got) == 1
        assert b.stats.get("stray_group") == 1
        assert b.stats.get("received") == 1

    def test_in_flight_packet_after_unregister_is_a_stray(self):
        runtime, net = make_net()
        group = Group([0, 1])
        a, b = NodePort(net, 0), NodePort(net, 1)
        a.register(1, group)
        b.register(1, group)
        b.mux.channel(3, group=1).on_deliver(lambda m: None)
        a.mux.channel(3, group=1).send(make_msg(dest=(1,)))
        b.unregister(1)  # teardown races the packet in flight
        runtime.run_for(1.0)
        assert b.stats.get("stray_group") == 1
        assert b.stats.get("received") == 0


class TestDetach:
    def test_detach_refused_while_groups_remain(self):
        __, net = make_net()
        port = NodePort(net, 0)
        port.register(1, Group([0, 1]))
        with pytest.raises(StackError, match="still hosts groups"):
            port.detach()

    def test_detach_after_last_unregister(self):
        __, net = make_net()
        port = NodePort(net, 0)
        port.register(1, Group([0, 1]))
        port.unregister(1)
        port.detach()  # no error; the node is free again
        NodePort(net, 0)
