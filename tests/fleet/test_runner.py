"""run_fleet: layout, verdicts, determinism, and both runtimes."""

import pytest

from repro.errors import ReproError
from repro.fleet import FleetConfig, run_fleet
from repro.fleet.runner import group_members


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(groups=0), "at least one group"),
            (dict(members=1), "at least two members"),
            (dict(members=8, nodes=4), "cannot place"),
            (dict(groups=100, clients=50), "one client per group"),
            (dict(hot_fraction=1.5), "hot_fraction"),
            (dict(hot_multiplier=0.5), "hot_multiplier"),
            (dict(warmup=10.0, duration=10.0), "warmup"),
        ],
    )
    def test_bad_configs_rejected(self, kwargs, match):
        with pytest.raises(ReproError, match=match):
            FleetConfig(**kwargs)

    def test_defaults_are_the_headline_sweep(self):
        config = FleetConfig()
        assert (config.groups, config.clients) == (1000, 100_000)
        assert config.clients_per_group == 100


class TestLayout:
    def test_group_members_distinct_and_sorted(self):
        for index in range(40):
            members = group_members(index, 3, 8)
            assert members == sorted(set(members))
            assert len(members) == 3
            assert all(0 <= m < 8 for m in members)

    def test_layout_rotates_over_nodes(self):
        assert group_members(0, 3, 8) == [0, 1, 2]
        assert group_members(1, 3, 8) == [3, 4, 5]
        assert group_members(2, 3, 8) == [0, 6, 7]  # wraps

    def test_hot_groups_evenly_spaced(self):
        config = FleetConfig(
            groups=100, clients=10_000, hot_fraction=0.05
        )
        hot = [i for i in range(config.groups) if config.is_hot(i)]
        assert len(hot) == config.hot_count == 5
        assert hot == [0, 20, 40, 60, 80]

    def test_group_rate_applies_hot_multiplier(self):
        config = FleetConfig(
            groups=10, clients=100, client_rate=1.0,
            hot_fraction=0.1, hot_multiplier=10.0,
        )
        assert config.group_rate(0) == 100.0  # hot
        assert config.group_rate(1) == 10.0   # cold


def small_sim_config(**overrides):
    """10 groups on 4 nodes: one hot, wide oracle margins."""
    base = dict(
        runtime="sim",
        groups=10,
        members=2,
        nodes=4,
        clients=100,
        client_rate=1.0,
        hot_fraction=0.1,
        hot_multiplier=10.0,
        duration=6.0,
        warmup=0.5,
        high_threshold=100.0,
        oracle_poll=0.5,
        settle=2.0,
    )
    base.update(overrides)
    return FleetConfig(**base)


class TestSimFleet:
    def test_hot_group_switches_and_cold_stay(self):
        result = run_fleet(small_sim_config())
        assert result.ok, result.violations
        assert (result.hot_groups, result.hot_switched) == (1, 1)
        assert result.cold_switched == 0
        assert result.stray_packets == 0
        hot_reports = [r for r in result.per_group if r.hot]
        assert [r.final_protocol for r in hot_reports] == ["tokenring"]
        cold_finals = {
            r.final_protocol for r in result.per_group if not r.hot
        }
        assert cold_finals == {"sequencer"}

    def test_reports_cover_every_group(self):
        result = run_fleet(small_sim_config())
        assert len(result.per_group) == 10
        for report in result.per_group:
            assert report.delivered == report.casts * 2  # both members
            assert report.sequencer in report.members
            assert report.p99_ms is None or report.p99_ms > 0
        assert result.delivered == sum(r.delivered for r in result.per_group)
        assert result.msgs_per_s == pytest.approx(result.delivered / 6.0)

    def test_virtual_time_runs_are_deterministic(self):
        a = run_fleet(small_sim_config())
        b = run_fleet(small_sim_config())
        assert a.casts == b.casts
        assert a.delivered == b.delivered
        assert [r.p99_ms for r in a.per_group] == [
            r.p99_ms for r in b.per_group
        ]

    def test_seed_changes_the_traffic(self):
        a = run_fleet(small_sim_config())
        b = run_fleet(small_sim_config(seed=7))
        assert a.casts != b.casts


class TestAsyncioFleet:
    def test_small_fleet_over_real_udp(self):
        # Oracle expectations off (no hot groups, huge threshold): this
        # smoke proves group-id frames and shared ports over real UDP.
        config = FleetConfig(
            runtime="asyncio",
            groups=8,
            members=2,
            nodes=4,
            clients=16,
            client_rate=2.0,
            hot_fraction=0.0,
            high_threshold=1e9,
            duration=1.5,
            warmup=0.1,
            settle=0.5,
            oracle_poll=0.5,
            token_interval=0.05,
            base_port=47610,
        )
        result = run_fleet(config)
        assert result.ok, result.violations
        assert result.runtime == "asyncio"
        assert result.delivered > 0
        assert result.stray_packets == 0
        assert len(result.per_group) == 8
