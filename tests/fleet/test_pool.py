"""Unit tests for the sequencer pool's load balancing."""

import pytest

from repro.errors import StackError
from repro.fleet import SequencerPool


def test_first_assignment_prefers_lowest_rank():
    pool = SequencerPool()
    assert pool.assign([3, 1, 2]) == 1


def test_assignments_spread_over_members():
    pool = SequencerPool()
    picks = [pool.assign([0, 1, 2]) for __ in range(3)]
    assert sorted(picks) == [0, 1, 2]


def test_ties_break_deterministically():
    a, b = SequencerPool(), SequencerPool()
    members = [5, 2, 9]
    assert [a.assign(members) for __ in range(6)] == [
        b.assign(members) for __ in range(6)
    ]


def test_overlapping_groups_balance_on_shared_nodes():
    pool = SequencerPool()
    first = pool.assign([0, 1])
    second = pool.assign([0, 1])
    # The second group sharing both nodes must get the other one.
    assert {first, second} == {0, 1}
    third = pool.assign([1, 2])  # 2 is unloaded, 1 carries one
    assert third == 2


def test_release_rebalances():
    pool = SequencerPool()
    assert pool.assign([0, 1]) == 0
    assert pool.assign([0, 1]) == 1
    pool.release(0)
    assert pool.assign([0, 1]) == 0


def test_release_without_assignment_raises():
    pool = SequencerPool()
    with pytest.raises(StackError, match="no sequencer assignments"):
        pool.release(4)


def test_empty_group_raises():
    pool = SequencerPool()
    with pytest.raises(StackError, match="empty group"):
        pool.assign([])


def test_loads_snapshot_hides_zeroes():
    pool = SequencerPool()
    pool.assign([0, 1])
    pool.assign([0, 1])
    pool.release(0)
    assert pool.loads == {1: 1}
    assert pool.load_of(0) == 0
