"""Telemetry over a live fleet: the PR's acceptance surface.

A 200-group sim sweep must expose per-group snapshots whose aggregate
agrees with the FleetResult artifact to within 1%, every oracle
escalation must carry its justifying snapshot, and the asyncio runtime
must serve the same numbers over a real HTTP endpoint.
"""

import json

import pytest

from repro.fleet.runner import FleetConfig, run_fleet


def small_config(**overrides):
    # The headline sweep's per-group rates (cold 6 deliveries/s, hot
    # 300/s, threshold 50) scaled down to 200 groups.
    base = dict(
        groups=200,
        members=3,
        nodes=24,
        clients=20_000,
        client_rate=0.02,
        hot_fraction=0.05,
        hot_multiplier=50.0,
        duration=6.0,
        warmup=0.5,
        settle=2.0,
        high_threshold=50.0,
        seed=11,
        telemetry=True,
        telemetry_window=1.0,
    )
    base.update(overrides)
    return FleetConfig(**base)


@pytest.fixture(scope="module")
def telemetry_result():
    return run_fleet(small_config())


class TestFleetTelemetryAcceptance:
    def test_run_is_clean(self, telemetry_result):
        assert telemetry_result.ok, telemetry_result.violations

    def test_snapshot_agrees_with_artifact_within_one_percent(
        self, telemetry_result
    ):
        fleet = telemetry_result.telemetry["snapshot"]["fleet"]
        assert fleet["groups"] == 200
        assert telemetry_result.delivered > 0
        drift = abs(fleet["delivered"] - telemetry_result.delivered)
        assert drift <= 0.01 * telemetry_result.delivered
        drift = abs(fleet["casts"] - telemetry_result.casts)
        assert drift <= 0.01 * max(1, telemetry_result.casts)

    def test_per_group_snapshots_agree_with_reports(self, telemetry_result):
        groups = telemetry_result.telemetry["snapshot"]["groups"]
        assert len(groups) == 200
        for report in telemetry_result.per_group:
            snap = groups[str(report.group_id)]
            assert snap["delivered"] == report.delivered
            assert snap["hot"] == report.hot
            assert snap["protocol"] == report.final_protocol
            assert snap["sequencer"] == report.sequencer

    def test_every_escalation_carries_its_justification(self, telemetry_result):
        escalations = telemetry_result.telemetry["escalations"]
        assert escalations, "hot groups should have escalated"
        for record in escalations:
            snapshot = record["snapshot"]
            assert snapshot is not None
            assert snapshot["group"] == record["group_id"]
            assert "window_partial" in snapshot
            assert record["signal"] is not None
        # Hot switched groups show the switch in their telemetry too.
        groups = telemetry_result.telemetry["snapshot"]["groups"]
        switched = [
            g for g in groups.values() if g["protocol"] == "tokenring"
        ]
        assert len(switched) == telemetry_result.hot_switched
        assert all(g["switches"] >= 1 for g in switched)
        assert all(
            g["last_switch_s"] is not None and g["last_switch_s"] >= 0.0
            for g in switched
        )

    def test_payload_shape_and_serializability(self, telemetry_result):
        payload = telemetry_result.telemetry
        assert payload["schema_version"] == 1
        assert payload["kind"] == "telemetry"
        assert payload["source"] == "poll"
        assert "repro_fleet_delivered_total" in payload["prometheus"]
        json.dumps(telemetry_result.as_dict())  # artifact-safe

    def test_windows_rolled_on_the_sim_clock(self, telemetry_result):
        fleet = telemetry_result.telemetry["snapshot"]["fleet"]
        # duration 6s + settle 2s at 1s windows, plus the final flush.
        assert fleet["windows_rolled"] >= 8

    def test_pool_and_stray_surfaces(self, telemetry_result):
        assert len(telemetry_result.pool_loads) > 0
        assert sum(telemetry_result.pool_loads.values()) == 200
        assert set(telemetry_result.stray_by_node) == set(range(24))
        pool = telemetry_result.telemetry["snapshot"]["fleet"]["pool"]
        assert pool["nodes"] == len(telemetry_result.pool_loads)

    def test_summary_mentions_telemetry_surfaces(self, telemetry_result):
        text = telemetry_result.summary()
        assert "ports:" in text and "stray-group drops=" in text
        assert "pool:" in text and "sequencers on" in text
        assert "telem:" in text and "windows=" in text


class TestTelemetryStaysOptIn:
    def test_disabled_run_has_no_telemetry_payload(self):
        config = small_config(
            groups=10, nodes=6, clients=100, duration=3.0, telemetry=False
        )
        result = run_fleet(config)
        assert result.telemetry is None
        assert "telemetry" not in result.as_dict()

    def test_telemetry_does_not_change_the_outcome(self):
        base = dict(
            groups=20, members=3, nodes=12, clients=200, client_rate=0.5,
            duration=4.0, settle=1.0, high_threshold=40.0, seed=9,
        )
        off = run_fleet(FleetConfig(**base))
        on = run_fleet(FleetConfig(telemetry=True, **base))
        assert on.delivered == off.delivered
        assert on.casts == off.casts
        assert on.hot_switched == off.hot_switched
        assert [r.as_dict() for r in on.per_group] == [
            r.as_dict() for r in off.per_group
        ]

    def test_expo_port_requires_asyncio_and_telemetry(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="asyncio"):
            FleetConfig(telemetry=True, expo_port=0)
        with pytest.raises(ReproError, match="telemetry=True"):
            FleetConfig(runtime="asyncio", expo_port=0)


class TestLiveExposition:
    def test_asyncio_endpoint_serves_and_scrape_matches(self):
        config = FleetConfig(
            runtime="asyncio",
            groups=4,
            members=3,
            nodes=6,
            clients=40,
            client_rate=2.0,
            duration=2.0,
            warmup=0.2,
            settle=0.5,
            seed=3,
            base_port=48510,
            telemetry=True,
            telemetry_window=0.5,
            expo_port=0,
        )
        result = run_fleet(config)
        scrape = result.telemetry["scrape"]
        assert scrape["source"] == "scrape"
        assert scrape["url"].startswith("http://127.0.0.1:")
        # The HTTP view and the poll view agree on totals.
        assert (
            scrape["snapshot"]["fleet"]["delivered"]
            == result.telemetry["snapshot"]["fleet"]["delivered"]
            == result.delivered
        )
        assert "repro_fleet_delivered_total" in scrape["prometheus"]
