"""Process sharding: hash placement, the supervisor, and slice parity."""

import json

import pytest

from repro.errors import ReproError, ShardCrashed, ShardError
from repro.fleet import (
    FleetConfig,
    plan_sequencers,
    plan_shards,
    run_fleet,
    run_fleet_sharded,
    shard_of,
)
from repro.fleet.sharding import _shard_worker, fnv1a32


def small_config(**overrides):
    base = dict(
        groups=24,
        members=3,
        nodes=8,
        clients=240,
        client_rate=0.5,
        hot_fraction=0.1,
        hot_multiplier=50.0,
        duration=2.0,
        warmup=0.2,
        settle=1.0,
        seed=7,
    )
    base.update(overrides)
    return FleetConfig(**base)


def outcomes(result):
    """The execution-independent projection of a fleet result."""
    return json.dumps(
        [report.as_dict() for report in result.per_group], sort_keys=True
    )


class TestPlacement:
    def test_fnv1a32_pinned_vectors(self):
        # Independently computed; placement is a wire-visible contract.
        assert fnv1a32(0) == 0x4B95F515
        assert fnv1a32(1) == 0xFB69B604
        assert shard_of(1, 1) == 0

    def test_shard_of_is_stable_across_fleet_sizes(self):
        # A group's home depends only on (id, shards) — never on how
        # many other groups exist.
        for gid in (1, 127, 128, 16384, 2097152, 2 ** 32 - 1):
            homes = {shard_of(gid, 4) for __ in range(3)}
            assert len(homes) == 1
            assert 0 <= homes.pop() < 4

    def test_shard_of_rejects_bad_count(self):
        with pytest.raises(ShardError, match=">= 1"):
            shard_of(1, 0)

    def test_plan_covers_each_group_once(self):
        config = small_config(shards=4)
        plan = plan_shards(config)
        assert len(plan) == 4
        flat = sorted(index for slice_ in plan for index in slice_)
        assert flat == list(range(config.groups))
        for slice_ in plan:
            assert slice_ == sorted(slice_)
            for index in slice_:
                assert shard_of(index + 1, 4) == plan.index(slice_)

    def test_plan_is_reasonably_balanced(self):
        config = FleetConfig(groups=1000, clients=1000, shards=4)
        sizes = [len(slice_) for slice_ in plan_shards(config)]
        assert sum(sizes) == 1000
        assert max(sizes) - min(sizes) < 200  # hash spread, not clumps

    def test_config_validates_shards(self):
        with pytest.raises(ReproError, match=">= 0"):
            small_config(shards=-1)
        with pytest.raises(ReproError, match="sim runtime"):
            small_config(shards=2, runtime="asyncio")
        with pytest.raises(ReproError, match="cannot split"):
            small_config(shards=25)


class TestSlices:
    def test_slice_runs_merge_to_full_fleet(self):
        """Any partition reproduces the unpartitioned per-group outcomes."""
        config = small_config()
        full = run_fleet(config)
        evens = run_fleet(config, indices=range(0, config.groups, 2))
        odds = run_fleet(config, indices=range(1, config.groups, 2))
        merged = sorted(
            evens.per_group + odds.per_group, key=lambda r: r.group_id
        )
        assert [r.as_dict() for r in merged] == [
            r.as_dict() for r in full.per_group
        ]

    def test_sequencer_plan_matches_live_assignment(self):
        config = small_config()
        plan = plan_sequencers(config)
        result = run_fleet(config)
        assert [r.sequencer for r in result.per_group] == plan


class TestSupervisor:
    def test_sharded_run_matches_in_process(self):
        config = small_config()
        sharded = run_fleet_sharded(small_config(shards=2))
        assert outcomes(sharded) == outcomes(run_fleet(config))
        assert sharded.shards == 2
        assert len(sharded.shard_stats) == 2
        assert sharded.groups == config.groups
        assert sharded.clients == config.clients
        assert sharded.delivered == sum(
            r.delivered for r in sharded.per_group
        )
        assert sharded.pool_loads  # merged back from per-shard slices
        assert all(s["cpu_s"] > 0 for s in sharded.shard_stats)
        assert sharded.ok, sharded.violations

    def test_single_shard_as_dict_round_trips(self):
        result = run_fleet_sharded(small_config(shards=1))
        payload = result.as_dict()
        assert payload["shards"] == 1
        assert len(payload["shard_stats"]) == 1
        assert "shards" in result.summary()

    def test_telemetry_rolls_up_across_shards(self):
        config = small_config(telemetry=True, shards=2)
        result = run_fleet_sharded(config)
        assert result.telemetry is not None
        merged = result.telemetry
        assert merged["source"] == "merge"
        assert merged["merged_from"] == 2
        assert merged["snapshot"]["fleet"]["groups"] == config.groups
        assert merged["snapshot"]["fleet"]["delivered"] == result.delivered
        assert len(merged["snapshot"]["groups"]) == config.groups
        assert "repro_fleet_delivered_total" in merged["prometheus"]

    def test_crashed_shard_raises_structured_error(self):
        # An impossible slice makes the worker die after spawn; the
        # supervisor must surface the death, not hang.
        config = small_config(shards=2)
        bad = plan_shards(config)[0] + [config.groups + 50]  # bogus index

        import repro.fleet.sharding as sharding

        original = sharding.plan_shards
        sharding.plan_shards = lambda cfg: [bad, original(cfg)[1]]
        try:
            with pytest.raises(ShardCrashed) as excinfo:
                run_fleet_sharded(config, timeout=60.0)
        finally:
            sharding.plan_shards = original
        assert excinfo.value.shard == 0
        assert "IndexError" in str(excinfo.value) or "shard 0" in str(
            excinfo.value
        )

    def test_worker_streams_wire_frames(self):
        """The worker's own frames decode with the fleet wire codec."""
        import multiprocessing

        from repro.net.codec import WireCodec

        config = small_config(groups=4, clients=40, duration=1.0, settle=0.5)
        recv, send = multiprocessing.get_context("fork").Pipe(duplex=False)
        _shard_worker(send, 3, config, [0, 1, 2, 3])
        codec = WireCodec()
        frames = []
        while recv.poll(0):
            try:
                frames.append(codec.decode_datagram(recv.recv_bytes()))
            except EOFError:
                break  # worker closed its end after the summary
        assert len(frames) == 5  # 4 reports + 1 summary
        groups = [frame[0] for frame in frames]
        assert groups == [1, 2, 3, 4, 0]
        assert all(frame[1] == 3 for frame in frames)  # src = shard id
        summary = frames[-1][3]
        assert summary["kind"] == "shard_summary"
        assert summary["groups"] == 4
        assert summary["cpu_s"] > 0
