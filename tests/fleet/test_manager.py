"""GroupManager: shared ports, group lifecycle, and the oracle loop."""

import pytest

from repro.core.oracle import FleetOracle
from repro.errors import SwitchError
from repro.fleet import GroupManager
from repro.net.ptp import PointToPointNetwork
from repro.protocols.fifo import FifoLayer
from repro.protocols.sequencer import SequencerLayer
from repro.core.switchable import ProtocolSpec
from repro.runtime.sim_runtime import SimRuntime


def specs():
    return [
        ProtocolSpec("A", lambda r: [FifoLayer()]),
        ProtocolSpec("B", lambda r: [SequencerLayer()]),
    ]


def make_manager(nodes=3, oracle=None):
    runtime = SimRuntime()
    net = PointToPointNetwork(runtime, nodes)
    return runtime, GroupManager(runtime, net, oracle=oracle)


def attach_log(handle):
    got = []
    handle.on_deliver(lambda rank, msg: got.append((rank, msg.body)))
    return got


class TestLifecycle:
    def test_overlapping_groups_share_ports(self):
        runtime, manager = make_manager()
        g1 = manager.create_group([0, 1], specs(), initial="A")
        g2 = manager.create_group([1, 2], specs(), initial="A")
        assert (g1.group_id, g2.group_id) == (1, 2)
        assert sorted(manager.ports) == [0, 1, 2]  # node 1 is shared

        log1, log2 = attach_log(g1), attach_log(g2)
        g1.cast(0, "one")
        g2.cast(2, "two")
        runtime.run_for(1.0)
        # Full isolation: each group's cast reaches only its members.
        assert sorted(log1) == [(0, "one"), (1, "one")]
        assert sorted(log2) == [(1, "two"), (2, "two")]

    def test_teardown_releases_and_isolates(self):
        runtime, manager = make_manager()
        g1 = manager.create_group([0, 1], specs(), initial="A")
        g2 = manager.create_group([0, 1], specs(), initial="A")
        log2 = attach_log(g2)
        manager.teardown_group(g1.group_id)
        assert g1.state == "torn_down"
        assert g1.group_id not in manager.handles
        g2.cast(0, "still works")
        runtime.run_for(1.0)
        assert len(log2) == 2
        strays = sum(
            p.stats.get("stray_group") for p in manager.ports.values()
        )
        assert strays == 0  # quiet teardown leaves nothing in flight

    def test_teardown_unknown_group_raises(self):
        __, manager = make_manager()
        with pytest.raises(SwitchError, match="no group"):
            manager.teardown_group(9)

    def test_rebuild_after_teardown_reuses_nodes(self):
        runtime, manager = make_manager()
        g1 = manager.create_group([0, 1], specs(), initial="A")
        manager.teardown_group(g1.group_id)
        g3 = manager.create_group([0, 1], specs(), initial="A")
        log = attach_log(g3)
        g3.cast(1, "rebuilt")
        runtime.run_for(1.0)
        assert sorted(log) == [(0, "rebuilt"), (1, "rebuilt")]

    def test_sequencer_assignments_follow_group_lifetimes(self):
        __, manager = make_manager()
        first = manager.assign_sequencer([0, 1])
        g1 = manager.create_group([0, 1], specs(), initial="A")
        second = manager.assign_sequencer([0, 1])
        manager.create_group([0, 1], specs(), initial="A")
        assert {first, second} == {0, 1}  # pool spread the duty
        manager.teardown_group(g1.group_id)
        assert manager.pool.loads == {second: 1}


class TestRestartHardening:
    """Shard restarts sweep lifecycles repeatedly; nothing may leak."""

    def test_teardown_is_idempotent(self):
        __, manager = make_manager()
        fired = []
        manager.on_teardown(lambda gid, dirty: fired.append((gid, dirty)))
        g1 = manager.create_group([0, 1], specs(), initial="A")
        assert manager.teardown_group(g1.group_id) is True
        assert manager.teardown_group(g1.group_id) is False
        assert manager.teardown_group(g1.group_id) is False
        # Counted and called back exactly once; pool fully released.
        assert manager.stats.get("groups_torn_down") == 1
        assert fired == [(g1.group_id, True)]
        assert manager.pool.loads == {}
        # A group this manager never created is still a caller bug.
        with pytest.raises(SwitchError, match="no group"):
            manager.teardown_group(99)

    def test_restart_polling_leaks_no_timers(self):
        runtime, manager = make_manager(
            oracle=FleetOracle(
                metric_factory=lambda gid: lambda: 0.0,
                high_threshold=100.0,
                low_protocol="A",
                high_protocol="B",
            )
        )
        for __ in range(5):
            manager.start_oracle_polling(0.5)
        assert runtime.pending() == 1  # one live chain, not five
        manager.stop_oracle_polling()
        manager.stop_oracle_polling()  # idempotent
        assert runtime.pending() == 0  # armed tick cancelled, not orphaned
        # A full stop/start cycle re-arms exactly one chain.
        manager.start_oracle_polling(0.25)
        runtime.run_for(1.0)
        manager.stop_oracle_polling()
        assert runtime.pending() == 0

    def test_explicit_group_ids(self):
        runtime, manager = make_manager()
        g7 = manager.create_group([0, 1], specs(), initial="A", group_id=7)
        assert g7.group_id == 7
        with pytest.raises(SwitchError, match="already in use"):
            manager.create_group([0, 1], specs(), initial="A", group_id=7)
        with pytest.raises(SwitchError, match=">= 1"):
            manager.create_group([0, 1], specs(), initial="A", group_id=0)
        # Implicit allocation continues past the explicit id.
        g8 = manager.create_group([1, 2], specs(), initial="A")
        assert g8.group_id == 8
        log = attach_log(g7)
        g7.cast(0, "routed")
        runtime.run_for(1.0)
        assert sorted(log) == [(0, "routed"), (1, "routed")]

    def test_assign_sequencer_with_planned_rank(self):
        __, manager = make_manager()
        assert manager.assign_sequencer([0, 1], rank=1, group_id=5) == 1
        assert manager.pool.loads == {1: 1}
        manager.create_group([0, 1], specs(), initial="A", group_id=5)
        manager.teardown_group(5)
        assert manager.pool.loads == {}
        with pytest.raises(SwitchError, match="not among members"):
            manager.assign_sequencer([0, 1], rank=2)


class TestOracleLoop:
    def make_rate_oracle(self, rates):
        """An oracle whose per-group signal is read from ``rates``."""
        return FleetOracle(
            metric_factory=lambda gid: lambda: rates.get(gid, 0.0),
            high_threshold=100.0,
            low_protocol="A",
            high_protocol="B",
        )

    def test_groups_watched_and_unwatched(self):
        __, manager = make_manager(oracle=self.make_rate_oracle({}))
        g1 = manager.create_group([0, 1], specs(), initial="A")
        assert manager.oracle.watched == (g1.group_id,)
        manager.teardown_group(g1.group_id)
        assert manager.oracle.watched == ()

    def test_poll_escalates_hot_group_only(self):
        rates = {}
        runtime, manager = make_manager(oracle=self.make_rate_oracle(rates))
        hot = manager.create_group([0, 1], specs(), initial="A")
        cold = manager.create_group([1, 2], specs(), initial="A")
        rates[hot.group_id] = 500.0
        rates[cold.group_id] = 5.0
        decisions = manager.poll_oracle()
        assert decisions == {hot.group_id: "B"}
        runtime.run_for(2.0)
        assert set(hot.current_protocols.values()) == {"B"}
        assert set(cold.current_protocols.values()) == {"A"}
        assert manager.stats.get("oracle_switches") == 1

    def test_polling_loop_stops_cleanly(self):
        rates = {}
        runtime, manager = make_manager(oracle=self.make_rate_oracle(rates))
        g = manager.create_group([0, 1], specs(), initial="A")
        manager.start_oracle_polling(0.5)
        runtime.run_for(1.2)
        rates[g.group_id] = 500.0
        manager.stop_oracle_polling()
        runtime.run_for(2.0)
        # The stopped loop never saw the hot signal.
        assert set(g.current_protocols.values()) == {"A"}

    def test_poll_without_oracle_raises(self):
        __, manager = make_manager()
        with pytest.raises(SwitchError, match="no fleet oracle"):
            manager.poll_oracle()

    def test_bad_poll_interval_raises(self):
        __, manager = make_manager(oracle=self.make_rate_oracle({}))
        with pytest.raises(SwitchError, match="positive"):
            manager.start_oracle_polling(0.0)
