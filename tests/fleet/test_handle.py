"""GroupHandle: the build/start/drain/teardown lifecycle.

A single-group run is a fleet of size one — ``build_switch_group`` is
now a thin wrapper returning a handle's stacks — so the lifecycle
contract tested here underwrites every workload in the repo.
"""

import pytest

from repro.core.switchable import (
    ProtocolSpec,
    build_group_handle,
    build_switch_group,
)
from repro.errors import SwitchError
from repro.net.ptp import PointToPointNetwork
from repro.protocols.fifo import FifoLayer
from repro.protocols.sequencer import SequencerLayer
from repro.runtime.sim_runtime import SimRuntime
from repro.sim.rng import RandomStreams
from repro.stack.membership import Group


def specs():
    return [
        ProtocolSpec("A", lambda r: [FifoLayer()]),
        ProtocolSpec("B", lambda r: [SequencerLayer()]),
    ]


def make_handle(members=3, auto_start=True, seed=1):
    runtime = SimRuntime()
    net = PointToPointNetwork(runtime, members)
    handle = build_group_handle(
        runtime,
        net,
        Group.of_size(members),
        specs(),
        initial="A",
        streams=RandomStreams(seed),
        auto_start=auto_start,
    )
    return runtime, net, handle


class TestLifecycle:
    def test_auto_start_lands_in_started(self):
        __, __, handle = make_handle()
        assert handle.state == "started"

    def test_deferred_start(self):
        runtime, __, handle = make_handle(auto_start=False)
        assert handle.state == "built"
        with pytest.raises(SwitchError, match="does not accept casts"):
            handle.cast(0, "early")
        handle.start()
        assert handle.state == "started"
        got = []
        handle.on_deliver(lambda rank, msg: got.append((rank, msg.body)))
        handle.cast(0, "hello")
        runtime.run_for(1.0)
        assert sorted(got) == [(0, "hello"), (1, "hello"), (2, "hello")]

    def test_start_is_idempotent(self):
        __, __, handle = make_handle()
        handle.start()
        assert handle.state == "started"

    def test_drain_refuses_new_casts(self):
        __, __, handle = make_handle()
        handle.drain()
        assert handle.state == "draining"
        with pytest.raises(SwitchError, match="does not accept casts"):
            handle.cast(0, "late")

    def test_teardown_is_idempotent_and_final(self):
        __, __, handle = make_handle()
        handle.teardown()
        assert handle.state == "torn_down"
        handle.teardown()  # second call is a no-op
        with pytest.raises(SwitchError, match="torn down"):
            handle.start()
        with pytest.raises(SwitchError, match="torn down"):
            handle.drain()

    def test_teardown_frees_the_network_nodes(self):
        runtime, net, handle = make_handle()
        handle.teardown()
        # Rebuild on the same nodes: the transports detached cleanly.
        rebuilt = build_group_handle(
            runtime,
            net,
            Group.of_size(3),
            specs(),
            initial="A",
            streams=RandomStreams(2),
        )
        got = []
        rebuilt.on_deliver(lambda rank, msg: got.append(rank))
        rebuilt.cast(1, "fresh")
        runtime.run_for(1.0)
        assert sorted(got) == [0, 1, 2]


class TestConveniences:
    def test_request_switch_defaults_to_coordinator(self):
        runtime, __, handle = make_handle()
        handle.request_switch("B")
        runtime.run_for(2.0)
        assert set(handle.current_protocols.values()) == {"B"}

    def test_current_protocols_per_member(self):
        __, __, handle = make_handle()
        assert handle.current_protocols == {0: "A", 1: "A", 2: "A"}


class TestWrapperParity:
    def test_build_switch_group_is_a_size_one_fleet(self):
        runtime = SimRuntime()
        net = PointToPointNetwork(runtime, 2)
        stacks = build_switch_group(
            runtime, net, Group.of_size(2), specs(), initial="A",
            streams=RandomStreams(3),
        )
        assert sorted(stacks) == [0, 1]
        assert all(s.group_id == 0 for s in stacks.values())
