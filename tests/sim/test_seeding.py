"""The seed recipe book: pinned formulas and workers/shards parity."""

from repro.sim.rng import RandomStreams
from repro.sim.seeding import (
    figure2_cell_seed,
    figure2_repeat_seed,
    fleet_group_streams,
    fleet_sender_stream,
    scale_point_seed,
    scale_switch_seed,
)


class TestPinnedRecipes:
    """The exact arithmetic the checked-in artifacts were built with.

    These are fixture-drift tripwires: a formula change here reseeds
    every sweep cell and silently invalidates figure2.json, sweep.json,
    and fleet.json.
    """

    def test_figure2(self):
        assert figure2_cell_seed(42, 5) == 47
        assert figure2_repeat_seed(42, 0) == 42
        assert figure2_repeat_seed(42, 3) == 3042

    def test_scale(self):
        assert scale_point_seed(42, 10, 8) == 42 + 31 * 10 + 8
        assert scale_switch_seed(42, 8) == 42 + 977 + 8
        # Grids never collide on one master seed: the largest point
        # offset for the full config (sizes <= 30, batches <= 16) stays
        # clear of the switch band only above it — and the switch band
        # is above every quick-config point.
        assert scale_switch_seed(0, 0) > scale_point_seed(0, 30, 16)

    def test_fleet_streams_are_name_derived(self):
        # Same label -> same stream state, regardless of derivation
        # order: the property sharding leans on.
        a = RandomStreams(42)
        b = RandomStreams(42)
        fleet_sender_stream(a, 9, 1)  # extra derivation, different order
        assert (
            fleet_group_streams(a, 3).stream("x").random()
            == fleet_group_streams(b, 3).stream("x").random()
        )
        assert (
            fleet_sender_stream(a, 3, 0).random()
            == fleet_sender_stream(b, 3, 0).random()
        )


class TestPartitionParity:
    """One recipe book, two partitioners, zero drift."""

    def test_sweep_workers_parity(self):
        """A sweep grid is value-identical for any worker count."""
        from repro.workloads.experiment import Figure2Config
        from repro.workloads.parallel import (
            figure2_cells,
            run_cells,
            run_figure2_cell,
        )

        config = Figure2Config(duration=1.0, warmup=0.1)
        cells = figure2_cells(("sequencer",), [1, 2], config)
        serial = run_cells(cells, run_figure2_cell, workers=1)
        fanned = run_cells(cells, run_figure2_cell, workers=2)
        assert [r.__dict__ for r in serial] == [r.__dict__ for r in fanned]

    def test_fleet_shards_parity(self):
        """A fleet is outcome-identical for any shard count."""
        from repro.fleet import FleetConfig, run_fleet, run_fleet_sharded

        kwargs = dict(
            groups=12,
            members=3,
            nodes=6,
            clients=120,
            client_rate=0.5,
            duration=1.5,
            warmup=0.2,
            settle=1.0,
            seed=11,
        )
        inline = run_fleet(FleetConfig(**kwargs))
        sharded = run_fleet_sharded(FleetConfig(shards=3, **kwargs))
        assert [r.as_dict() for r in sharded.per_group] == [
            r.as_dict() for r in inline.per_group
        ]
