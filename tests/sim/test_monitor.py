"""Unit tests for measurement primitives."""

import pytest

from repro.sim.monitor import Counter, Ewma, Summary, TimeSeries


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter().get("anything") == 0

    def test_increments(self):
        counter = Counter()
        counter.incr("x")
        counter.incr("x", 4)
        assert counter.get("x") == 5

    def test_as_dict_is_a_copy(self):
        counter = Counter()
        counter.incr("x")
        snapshot = counter.as_dict()
        snapshot["x"] = 99
        assert counter.get("x") == 1


class TestEwma:
    def test_first_observation_initializes(self):
        ewma = Ewma(alpha=0.5)
        assert ewma.observe(10.0) == 10.0

    def test_moves_toward_new_samples(self):
        ewma = Ewma(alpha=0.5)
        ewma.observe(0.0)
        assert ewma.observe(10.0) == pytest.approx(5.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            Ewma(alpha=0.0)
        with pytest.raises(ValueError):
            Ewma(alpha=1.5)

    def test_reset(self):
        ewma = Ewma()
        ewma.observe(5.0)
        ewma.reset()
        assert ewma.value is None
        assert ewma.count == 0


class TestSummary:
    def test_mean_min_max(self):
        summary = Summary()
        summary.extend([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.count == 4

    def test_quantiles_exact(self):
        summary = Summary()
        summary.extend(range(101))  # 0..100
        assert summary.quantile(0.0) == 0
        assert summary.quantile(0.5) == 50
        assert summary.quantile(0.9) == pytest.approx(90)
        assert summary.quantile(1.0) == 100

    def test_quantile_interpolates(self):
        summary = Summary()
        summary.extend([0.0, 1.0])
        assert summary.quantile(0.5) == pytest.approx(0.5)

    def test_median(self):
        summary = Summary()
        summary.extend([5.0, 1.0, 3.0])
        assert summary.median == 3.0

    def test_stddev(self):
        summary = Summary()
        summary.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert summary.stddev == pytest.approx(2.0)

    def test_stddev_survives_large_offset_samples(self):
        """Regression: the naive sum-of-squares formula catastrophically
        cancels when samples are large-magnitude with tiny spread (e.g.
        wall-clock timestamps), collapsing stddev to 0 or garbage."""
        import statistics

        offsets = [0.0, 0.001, 0.002, 0.003, 0.004]
        base = 1.7e9  # epoch-seconds scale
        summary = Summary()
        summary.extend([base + x for x in offsets])
        # Welford's error is bounded by the conditioning of the inputs
        # (~1e-4 relative at this magnitude); the naive sum-of-squares
        # formula collapses to 0 or garbage — orders of magnitude off.
        assert summary.stddev == pytest.approx(
            statistics.pstdev(offsets), rel=1e-3
        )
        assert summary.mean == pytest.approx(base + statistics.mean(offsets))

    def test_stddev_shift_invariant(self):
        plain, shifted = Summary(), Summary()
        samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        plain.extend(samples)
        shifted.extend([s + 1e12 for s in samples])
        # Input rounding at 1e12 costs ~1e-4 ulp per sample; anything
        # beyond that would be algorithmic cancellation.
        assert shifted.stddev == pytest.approx(plain.stddev, rel=1e-4)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Summary().mean
        with pytest.raises(ValueError):
            Summary().quantile(0.5)

    def test_quantile_range_checked(self):
        summary = Summary()
        summary.observe(1.0)
        with pytest.raises(ValueError):
            summary.quantile(1.1)

    def test_observation_after_quantile_query(self):
        summary = Summary()
        summary.extend([3.0, 1.0])
        assert summary.minimum == 1.0
        summary.observe(0.5)
        assert summary.minimum == 0.5


class TestTimeSeries:
    def test_records_points(self):
        series = TimeSeries("load")
        series.record(0.0, 1.0)
        series.record(1.0, 2.0)
        assert series.points == [(0.0, 1.0), (1.0, 2.0)]
        assert series.values() == [1.0, 2.0]
        assert series.times() == [0.0, 1.0]
        assert len(series) == 2

    def test_window(self):
        series = TimeSeries()
        for t in range(5):
            series.record(float(t), t * 10.0)
        assert series.window(1.0, 3.0) == [(1.0, 10.0), (2.0, 20.0)]
