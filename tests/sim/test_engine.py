"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(0.3, lambda: fired.append("c"))
    sim.schedule(0.1, lambda: fired.append("a"))
    sim.schedule(0.2, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_simultaneous_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for name in "abcde":
        sim.schedule(0.5, lambda name=name: fired.append(name))
    sim.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5]
    assert sim.now == 1.5


def test_zero_delay_runs_after_current_instant_queue():
    sim = Simulator()
    fired = []
    sim.schedule(0.0, lambda: fired.append(1))
    sim.schedule(0.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1, 2]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancellation_prevents_firing():
    sim = Simulator()
    fired = []
    handle = sim.schedule(0.1, lambda: fired.append("x"))
    handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled


def test_cancellation_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(0.1, lambda: None)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled


def test_events_can_schedule_more_events():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(0.1, lambda: fired.append("second"))

    sim.schedule(0.1, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == pytest.approx(0.2)


def test_run_until_stops_at_boundary():
    sim = Simulator()
    fired = []
    sim.schedule(0.1, lambda: fired.append("in"))
    sim.schedule(0.5, lambda: fired.append("out"))
    sim.run_until(0.3)
    assert fired == ["in"]
    assert sim.now == 0.3
    sim.run_until(1.0)
    assert fired == ["in", "out"]


def test_run_until_is_inclusive():
    sim = Simulator()
    fired = []
    sim.schedule(0.3, lambda: fired.append("edge"))
    sim.run_until(0.3)
    assert fired == ["edge"]


def test_run_until_backwards_rejected():
    sim = Simulator()
    sim.run_until(1.0)
    with pytest.raises(SimulationError):
        sim.run_until(0.5)


def test_run_for_composes():
    sim = Simulator()
    sim.run_for(1.0)
    sim.run_for(1.0)
    assert sim.now == 2.0


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(0.1 * (i + 1), lambda i=i: fired.append(i))
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_pending_excludes_cancelled():
    sim = Simulator()
    sim.schedule(0.1, lambda: None)
    handle = sim.schedule(0.2, lambda: None)
    handle.cancel()
    assert sim.pending() == 1


def test_events_processed_counter():
    sim = Simulator()
    for __ in range(4):
        sim.schedule(0.1, lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_callback_exception_propagates_and_engine_recovers():
    sim = Simulator()

    def boom():
        raise RuntimeError("bang")

    fired = []
    sim.schedule(0.1, boom)
    sim.schedule(0.2, lambda: fired.append("after"))
    with pytest.raises(RuntimeError):
        sim.run()
    # The engine is not wedged: remaining events still run.
    sim.run()
    assert fired == ["after"]


# ----------------------------------------------------------------------
# Fast path: O(1) pending() + counted lazy cancellation + compaction
# ----------------------------------------------------------------------
def test_pending_tracks_schedule_fire_and_cancel():
    sim = Simulator()
    handles = [sim.schedule(0.1 * (i + 1), lambda: None) for i in range(5)]
    assert sim.pending() == 5
    handles[2].cancel()
    handles[4].cancel()
    assert sim.pending() == 3
    sim.step()
    assert sim.pending() == 2
    sim.run()
    assert sim.pending() == 0


def test_late_cancel_after_firing_does_not_corrupt_pending():
    sim = Simulator()
    handle = sim.schedule(0.1, lambda: None)
    sim.schedule(0.2, lambda: None)
    sim.step()  # fires `handle`
    handle.cancel()  # late cancel of an already-fired event
    handle.cancel()
    assert handle.cancelled
    assert sim.pending() == 1
    sim.run()
    assert sim.pending() == 0


def test_compaction_shrinks_wheel_after_mass_cancellation():
    sim = Simulator()
    keep = []
    sim.schedule(10.0, lambda: keep.append("live"))
    handles = [sim.schedule(1.0, lambda: keep.append("dead")) for __ in range(1000)]
    for handle in handles:
        handle.cancel()
    # Cancelled entries vastly outnumber live ones, so compaction ran.
    assert sim.footprint() < 1000
    assert sim.pending() == 1
    sim.run()
    assert keep == ["live"]


def test_compaction_preserves_firing_order():
    # Two identical schedules; one cancels enough timers mid-run to force
    # compaction, the other stays below the threshold.  Firing order of
    # the surviving events must be byte-identical.
    def drive(threshold):
        sim = Simulator()
        sim.COMPACT_MIN_DEAD = threshold
        fired = []
        handles = []
        for i in range(50):
            t = 1.0 + (i % 7) * 0.01  # deliberate ties
            handles.append(sim.schedule(t, lambda i=i: fired.append(i)))
        for i in range(0, 50, 2):
            handles[i].cancel()
        sim.run()
        return fired

    assert drive(threshold=4) == drive(threshold=10**9)


def test_cancel_of_future_entry_unlinks_immediately():
    sim = Simulator()
    handles = [sim.schedule(1.0, lambda: None) for __ in range(10)]
    for handle in handles[:5]:
        handle.cancel()
    # Not-yet-due entries are unlinked on the spot: no debris, no
    # compaction needed.
    assert sim.footprint() == 5
    assert sim.pending() == 5


def test_compaction_threshold_not_triggered_by_few_due_cancels():
    sim = Simulator()
    fired = []
    handles = [
        sim.schedule(1.0, lambda i=i: fired.append(i)) for i in range(10)
    ]
    sim.step()  # drains the tie-bucket into the due-heap, fires one
    for handle in handles[1:6]:
        handle.cancel()
    # Below COMPACT_MIN_DEAD: entries already in the due-heap stay lazy.
    assert sim.footprint() == 9
    assert sim.pending() == 4
    sim.run()
    assert fired == [0, 6, 7, 8, 9]


def _scan_live(sim):
    """Count live entries by walking the wheel's buckets + due-heap."""
    live = sum(
        1 for slot in sim._buckets for h in slot if not h.cancelled
    )
    return live + sum(1 for __, __s, h in sim._due if not h.cancelled)


def test_pending_is_constant_time_counter():
    # pending() must not scan: the counter and a manual scan agree after
    # an interleaved schedule/cancel/fire workload.
    sim = Simulator()
    handles = []
    for i in range(200):
        handles.append(sim.schedule(0.001 * (i + 1), lambda: None))
        if i % 3 == 0:
            handles[i // 2].cancel()
        if i % 5 == 0:
            sim.step()
    assert sim.pending() == _scan_live(sim)


# ----------------------------------------------------------------------
# Timeline: labelled, reproducible event scripts
# ----------------------------------------------------------------------
from repro.sim.engine import Timeline  # noqa: E402


def test_timeline_fires_in_time_order_and_records_labels():
    sim = Simulator()
    hits = []
    timeline = (
        Timeline()
        .at(0.3, lambda: hits.append("late"), label="late")
        .at(0.1, lambda: hits.append("early"), label="early")
    )
    timeline.install(sim)
    sim.run()
    assert hits == ["early", "late"]
    assert timeline.fired == [(0.1, "early"), (0.3, "late")]


def test_timeline_entries_property_is_sorted():
    timeline = (
        Timeline()
        .at(2.0, lambda: None, label="b")
        .at(1.0, lambda: None, label="a")
        .at(2.0, lambda: None, label="c")
    )
    assert timeline.entries == [(1.0, "a"), (2.0, "b"), (2.0, "c")]
    assert len(timeline) == 3


def test_timeline_same_instant_keeps_insertion_order():
    sim = Simulator()
    hits = []
    timeline = Timeline()
    for name in "abc":
        timeline.at(0.5, lambda name=name: hits.append(name), label=name)
    timeline.install(sim)
    sim.run()
    assert hits == ["a", "b", "c"]


def test_timeline_entry_past_horizon_never_fires():
    sim = Simulator()
    hits = []
    timeline = (
        Timeline()
        .at(0.1, lambda: hits.append("in"), label="in")
        .at(9.0, lambda: hits.append("out"), label="out")
    )
    timeline.install(sim)
    sim.run_until(1.0)
    assert hits == ["in"]
    assert timeline.fired == [(0.1, "in")]


def test_timeline_negative_time_rejected():
    with pytest.raises(SimulationError):
        Timeline().at(-0.5, lambda: None)


def test_timeline_install_is_once_only():
    timeline = Timeline().at(0.1, lambda: None)
    timeline.install(Simulator())
    with pytest.raises(SimulationError):
        timeline.install(Simulator())


def test_timeline_frozen_after_install():
    timeline = Timeline().at(0.1, lambda: None)
    timeline.install(Simulator())
    with pytest.raises(SimulationError):
        timeline.at(0.2, lambda: None)


def test_timeline_handles_are_cancellable():
    sim = Simulator()
    hits = []
    timeline = (
        Timeline()
        .at(0.1, lambda: hits.append("keep"), label="keep")
        .at(0.2, lambda: hits.append("drop"), label="drop")
    )
    handles = timeline.install(sim)
    handles[1].cancel()
    sim.run()
    assert hits == ["keep"]
    assert timeline.fired == [(0.1, "keep")]


# ----------------------------------------------------------------------
# run() runaway guard
# ----------------------------------------------------------------------
def test_run_until_guard_passes_terminating_programs():
    sim = Simulator()
    fired = []
    sim.schedule(0.1, lambda: fired.append("a"))
    sim.schedule(0.2, lambda: fired.append("b"))
    assert sim.run(until=1.0) == 2
    assert fired == ["a", "b"]


def test_run_until_guard_raises_on_runaway_self_rescheduling():
    sim = Simulator()

    def rearm():
        sim.schedule(0.05, rearm)

    rearm()
    with pytest.raises(SimulationError, match="runaway"):
        sim.run(until=2.0)


def test_run_until_guard_error_names_the_deadline_and_backlog():
    sim = Simulator()

    def rearm():
        sim.schedule(0.1, rearm)

    rearm()
    with pytest.raises(SimulationError) as excinfo:
        sim.run(until=0.5)
    message = str(excinfo.value)
    assert "t=0.5" in message
    assert "still queued" in message


def test_run_until_guard_rejects_past_deadlines():
    sim = Simulator()
    sim.run_until(1.0)
    with pytest.raises(SimulationError):
        sim.run(until=0.5)


def test_run_guard_composes_with_max_events():
    # max_events keeps its historical break-without-raising semantics
    # even when an until deadline is also armed.
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(0.1 * (i + 1), lambda i=i: fired.append(i))
    assert sim.run(max_events=3, until=10.0) == 3
    assert fired == [0, 1, 2]


# ----------------------------------------------------------------------
# rearm(): fused cancel + reschedule on the wheel
# ----------------------------------------------------------------------
class TestRearm:
    def test_moves_deadline_and_keeps_callback(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(5.0, lambda: fired.append("x"))
        handle = sim.rearm(handle, 1.0)
        sim.run()
        assert fired == ["x"]
        assert sim.now == 1.0

    def test_optional_callback_replacement(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(5.0, lambda: fired.append("old"))
        sim.rearm(handle, 1.0, lambda: fired.append("new"))
        sim.run()
        assert fired == ["new"]

    def test_same_bucket_rearm_reuses_the_handle(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        again = sim.rearm(handle, 1.0 + 1e-7)  # lands in the same slot
        assert again is handle
        assert sim.pending() == 1

    def test_cross_bucket_rearm_keeps_one_live_entry(self):
        sim = Simulator()
        handle = sim.schedule(0.001, lambda: None)
        handle = sim.rearm(handle, 30.0)
        assert sim.pending() == 1
        assert sim.footprint() == 1  # no dead debris left behind
        sim.run()
        assert sim.now == 30.0
        assert not handle.cancelled  # fired, not cancelled

    def test_rearm_of_cancelled_handle_raises(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        with pytest.raises(SimulationError, match="live handle"):
            sim.rearm(handle, 1.0)

    def test_rearm_of_fired_handle_raises(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError, match="live handle"):
            sim.rearm(handle, 1.0)

    def test_rearm_of_foreign_handle_raises(self):
        sim, other = Simulator(), Simulator()
        handle = other.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError, match="owned by this"):
            sim.rearm(handle, 1.0)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError, match="past"):
            sim.rearm(handle, -0.1)

    def test_rearm_after_due_heap_drain_issues_fresh_handle(self):
        # Two ties force the bucket into the due-heap on the first
        # step; rearming the survivor then exercises the slow path.
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("first"))
        mover = sim.schedule(1.0, lambda: fired.append("moved"))
        sim.step()
        fresh = sim.rearm(mover, 3.0)
        assert fresh is not mover
        assert mover.cancelled
        assert sim.pending() == 1
        sim.run()
        assert fired == ["first", "moved"]
        assert sim.now == 4.0

    def test_rearm_chain_survives_compaction(self):
        sim = Simulator()
        sim.COMPACT_MIN_DEAD = 4
        fired = []
        handle = sim.schedule(10.0, lambda: fired.append("kept"))
        for i in range(50):
            handle = sim.rearm(handle, 10.0 + i * 1e-3)
        debris = [sim.schedule(5.0, lambda: None) for __ in range(20)]
        for d in debris:
            d.cancel()
        sim.run()
        assert fired == ["kept"]
