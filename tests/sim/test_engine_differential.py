"""Differential stress test: timer wheel vs the frozen heap engine.

The hashed timer wheel replaced the binary heap behind an identical
interface; the only acceptable observable difference is speed.  This
test replays seeded random schedule/cancel/rearm/run workloads on

* the frozen pre-wheel engine (``repro.sim._heapref.HeapSimulator``),
* the wheel with rearm expressed as cancel + schedule, and
* the wheel using the fused :meth:`Simulator.rearm` fast path,

and asserts bit-identical firing order, ``pending()`` counts after
every operation, clock readings, and ``run_until`` return values.
The fused rearm consumes exactly one sequence number — the same as
cancel + schedule — so all three traces must agree to the event.
"""

import random

import pytest

from repro.sim._heapref import HeapSimulator
from repro.sim.engine import Simulator

#: Quantized delays so ties (same firing instant) occur constantly —
#: ordering bugs hide exactly there.
_DELAYS = (0.0, 0.001, 0.002, 0.005, 0.01, 0.01, 0.05, 0.1, 0.5, 2.0, 50.0)


def _cancel_schedule_rearm(engine, handle, delay, callback):
    handle.cancel()
    return engine.schedule(delay, callback)


def _fused_rearm(engine, handle, delay, callback):
    return engine.rearm(handle, delay)


def drive(engine, rearm, seed, ops=600):
    """Replay one seeded workload; return every observable the engine
    exposes along the way."""
    rng = random.Random(seed)
    fired = []
    handles = {}    # event id -> handle (may be fired/cancelled)
    callbacks = {}  # event id -> its callback (for cancel+schedule rearm)
    trace = []
    next_id = 0
    for __ in range(ops):
        roll = rng.random()
        if roll < 0.40 or not handles:
            eid = next_id
            next_id += 1
            callback = lambda eid=eid: fired.append(eid)  # noqa: E731
            handles[eid] = engine.schedule(rng.choice(_DELAYS), callback)
            callbacks[eid] = callback
        elif roll < 0.55:
            eid = rng.choice(sorted(handles))
            handles.pop(eid).cancel()
            callbacks.pop(eid)
        elif roll < 0.80:
            eid = rng.choice(sorted(handles))
            handle = handles[eid]
            # Both engines mark fired handles with _sim = None, so this
            # liveness check resolves identically on both sides.
            if not handle.cancelled and handle._sim is not None:
                handles[eid] = rearm(
                    engine, handle, rng.choice(_DELAYS), callbacks[eid]
                )
        elif roll < 0.90:
            engine.step()
        else:
            count = engine.run_until(
                engine.now + rng.choice((0.0, 0.003, 0.02, 0.3))
            )
            trace.append(("ran", count))
        trace.append((round(engine.now, 9), engine.pending()))
    trace.append(("drain", engine.run()))
    return fired, trace, engine.now, engine.events_processed


@pytest.mark.parametrize("seed", [0, 1, 7, 23, 99])
def test_wheel_matches_frozen_heap_reference(seed):
    heap = drive(HeapSimulator(), _cancel_schedule_rearm, seed)
    wheel = drive(Simulator(), _cancel_schedule_rearm, seed)
    fused = drive(Simulator(), _fused_rearm, seed)
    assert wheel == heap
    assert fused == heap


@pytest.mark.parametrize("seed", [3, 5])
def test_long_workload_with_tight_compaction(seed):
    # Force both engines through their compaction paths mid-workload.
    heap_engine = HeapSimulator()
    heap_engine.COMPACT_MIN_DEAD = 8
    wheel_engine = Simulator()
    wheel_engine.COMPACT_MIN_DEAD = 8
    heap = drive(heap_engine, _cancel_schedule_rearm, seed, ops=1500)
    fused = drive(wheel_engine, _fused_rearm, seed, ops=1500)
    assert fused == heap


def test_rearm_ties_break_like_cancel_plus_schedule():
    """A rearm into an existing tie-bucket must fire after the timers
    already armed for that instant — it takes a fresh sequence number
    exactly as cancel + schedule would."""

    def run(rearm):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.schedule(1.0, lambda name=name: fired.append(name))
        mover = sim.schedule(5.0, lambda: fired.append("moved"))
        rearm(sim, mover, 1.0, lambda: fired.append("moved"))
        sim.run()
        return fired

    assert (
        run(_fused_rearm)
        == run(_cancel_schedule_rearm)
        == ["a", "b", "c", "moved"]
    )
