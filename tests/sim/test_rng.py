"""Unit tests for named random streams."""

from repro.sim.rng import RandomStreams


def test_same_seed_same_sequence():
    a = RandomStreams(42).stream("jitter")
    b = RandomStreams(42).stream("jitter")
    assert [a.random() for __ in range(10)] == [b.random() for __ in range(10)]


def test_different_names_are_independent():
    streams = RandomStreams(42)
    a = streams.stream("a")
    b = streams.stream("b")
    assert [a.random() for __ in range(5)] != [b.random() for __ in range(5)]


def test_different_seeds_differ():
    a = RandomStreams(1).stream("x")
    b = RandomStreams(2).stream("x")
    assert [a.random() for __ in range(5)] != [b.random() for __ in range(5)]


def test_stream_is_cached():
    streams = RandomStreams(0)
    assert streams.stream("x") is streams.stream("x")


def test_stream_name_not_creation_order_determines_sequence():
    one = RandomStreams(7)
    two = RandomStreams(7)
    # Create in different orders; same-name streams still agree.
    a1 = one.stream("a")
    one.stream("b")
    two.stream("b")
    a2 = two.stream("a")
    assert [a1.random() for __ in range(5)] == [a2.random() for __ in range(5)]


def test_fork_produces_distinct_namespace():
    parent = RandomStreams(3)
    child = parent.fork("sub")
    p = parent.stream("x")
    c = child.stream("x")
    assert [p.random() for __ in range(5)] != [c.random() for __ in range(5)]


def test_fork_is_deterministic():
    a = RandomStreams(3).fork("sub").stream("x")
    b = RandomStreams(3).fork("sub").stream("x")
    assert [a.random() for __ in range(5)] == [b.random() for __ in range(5)]
