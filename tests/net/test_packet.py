"""Unit tests for packets."""

import pytest

from repro.net.packet import BROADCAST, Packet


def test_fields():
    packet = Packet(src=1, dst=2, payload="x", size_bytes=100, sent_at=0.5)
    assert packet.src == 1
    assert packet.dst == 2
    assert packet.payload == "x"
    assert packet.size_bits == 800


def test_zero_size_rejected():
    with pytest.raises(ValueError):
        Packet(src=0, dst=1, payload=None, size_bytes=0)


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        Packet(src=0, dst=1, payload=None, size_bytes=-5)


def test_broadcast_constant_is_not_a_node():
    assert BROADCAST < 0


def test_equality_ignores_sent_at():
    a = Packet(0, 1, "p", 10, sent_at=0.0)
    b = Packet(0, 1, "p", 10, sent_at=9.0)
    assert a == b
