"""UdpNetwork: real datagrams over localhost loopback.

Each test binds its own port range so parallel CI shards don't collide.
"""

import pytest

from repro.errors import NetworkError
from repro.net.packet import Packet
from repro.net.udp import MAX_DATAGRAM, UdpNetwork
from repro.runtime import AsyncioRuntime

BASE_PORT = 47510


@pytest.fixture
def runtime():
    rt = AsyncioRuntime()
    yield rt
    rt.close()


def open_net(runtime, num_nodes, base_port):
    net = UdpNetwork(runtime, num_nodes, base_port=base_port)
    runtime.run_task(net.open())
    return net


def collect(net, runtime):
    """Attach every node; return the dict the packets land in."""
    received = {}
    for node in net.nodes():
        received[node] = []
        net.attach(node, lambda pkt, node=node: received[node].append(pkt))
    return received


def test_unicast_crosses_the_kernel(runtime):
    net = open_net(runtime, 2, BASE_PORT)
    received = collect(net, runtime)
    ep0 = net._make_endpoint(0)
    ep0.unicast(1, "hello", 64)
    runtime.run_for(0.2)
    assert [pkt.payload for pkt in received[1]] == ["hello"]
    pkt = received[1][0]
    assert isinstance(pkt, Packet)
    assert pkt.src == 0 and pkt.dst == 1
    assert net.stats.get("sends") == 1
    assert net.stats.get("deliveries") == 1


def test_multicast_fans_out_and_dedups(runtime):
    net = open_net(runtime, 3, BASE_PORT + 10)
    received = collect(net, runtime)
    ep = net._make_endpoint(0)
    ep.multicast([1, 2, 2, 1], "m", 16)  # duplicates collapse
    runtime.run_for(0.2)
    assert [p.payload for p in received[1]] == ["m"]
    assert [p.payload for p in received[2]] == ["m"]
    assert received[0] == []
    assert net.stats.get("sends") == 2


def test_broadcast_reaches_everyone_but_sender(runtime):
    net = open_net(runtime, 3, BASE_PORT + 20)
    received = collect(net, runtime)
    net._make_endpoint(1).broadcast("b", 16)
    runtime.run_for(0.2)
    assert received[0] and received[2] and not received[1]


def test_send_before_open_is_a_programming_error(runtime):
    net = UdpNetwork(runtime, 2, base_port=BASE_PORT + 30)
    with pytest.raises(NetworkError, match="before open"):
        net._make_endpoint(0).unicast(1, "x", 8)


def test_send_after_close_is_dropped_quietly(runtime):
    net = open_net(runtime, 2, BASE_PORT + 40)
    collect(net, runtime)
    net.close()
    net._make_endpoint(0).unicast(1, "late", 8)  # no raise
    assert net.stats.get("send_after_close") == 1


def test_oversized_payload_rejected(runtime):
    net = open_net(runtime, 2, BASE_PORT + 50)
    collect(net, runtime)
    with pytest.raises(NetworkError, match="datagram cap"):
        net._make_endpoint(0).unicast(1, "x" * (MAX_DATAGRAM + 1), 8)


def test_close_is_idempotent_and_registered_with_runtime():
    runtime = AsyncioRuntime()
    net = open_net(runtime, 2, BASE_PORT + 60)
    runtime.close()  # closes the sockets via on_close
    net.close()  # second close is a no-op


def test_multicast_oversized_payload_rejected(runtime):
    net = open_net(runtime, 3, BASE_PORT + 70)
    collect(net, runtime)
    with pytest.raises(NetworkError, match="datagram cap"):
        net._make_endpoint(0).multicast([1, 2], "x" * (MAX_DATAGRAM + 1), 8)
    assert net.stats.get("sends", ) == 0


def test_multicast_encodes_payload_once(runtime):
    net = open_net(runtime, 4, BASE_PORT + 80)
    received = collect(net, runtime)
    calls = []
    original = net._encode_body

    def counting(payload):
        calls.append(payload)
        return original(payload)

    net._encode_body = counting
    net._make_endpoint(0).multicast([1, 2, 3], "fan", 16)
    runtime.run_for(0.2)
    assert len(calls) == 1  # one encode, three datagrams
    assert net.stats.get("sends") == 3
    for node in (1, 2, 3):
        assert [p.payload for p in received[node]] == ["fan"]


def test_multicast_target_cache_revalidates_on_change(runtime):
    net = open_net(runtime, 3, BASE_PORT + 90)
    collect(net, runtime)
    ep = net._make_endpoint(0)
    ep.multicast([1, 2], "a", 8)
    ep.multicast([1, 2], "b", 8)  # cache hit
    assert ep._dsts_cached == (1, 2)
    ep.multicast([2], "c", 8)  # different set recomputes
    assert ep._dsts_cached == (2,)
    with pytest.raises(NetworkError, match="out of range"):
        ep.multicast([1, 99], "d", 8)


def test_wire_format_is_binary_codec(runtime):
    """Datagrams on the socket start with the codec magic, not pickle."""
    from repro.net.codec import FRAME_OVERHEAD, MAGIC

    net = open_net(runtime, 2, BASE_PORT + 100)
    collect(net, runtime)
    raw = net._encode_body("probe")
    framed = net.codec.frame(0, 1, raw)
    assert framed[0] == MAGIC
    src, dst, payload = net.codec.decode(framed)
    assert (src, dst, payload) == (0, 1, "probe")
    assert len(framed) == FRAME_OVERHEAD + len(raw)


def test_delivered_message_shells_are_recycled(runtime):
    """Leak check: every decoded Message shell is recycled at delivery
    completion (or counted as refused), and steady state runs on one
    shell instead of an allocation per datagram."""
    from repro.stack.message import Message

    net = open_net(runtime, 2, BASE_PORT + 110)
    net.attach(0, lambda pkt: None)
    seen = []

    def consume(pkt):  # reads the message but does not retain it
        msg = pkt.payload
        seen.append((msg.mid, msg.header("fifo")))

    net.attach(1, consume)
    Message.pool_clear()
    ep = net._make_endpoint(0)
    for i in range(20):
        m = Message(sender=0, mid=(0, i), body=i, body_size=8)
        m = m.with_header("fifo", i, 4)
        ep.unicast(1, m, m.size_bytes)
    runtime.run_for(0.3)
    assert seen == [((0, i), i) for i in range(20)]
    stats = Message.pool_stats()
    # No leaks: every shell acquired on the decode path was recycled.
    assert stats["new"] + stats["reused"] == 20
    assert stats["recycled"] == 20
    assert stats["rejected"] == 0
    # Datagrams arrive one at a time, so one shell serves the run.
    assert stats["new"] == 1


def test_retained_message_survives_delivery_completion(runtime):
    """A receiver that keeps the decoded message defeats recycling via
    the refcount guard; the retained object is never corrupted."""
    from repro.stack.message import Message

    net = open_net(runtime, 2, BASE_PORT + 120)
    net.attach(0, lambda pkt: None)
    kept = []
    net.attach(1, lambda pkt: kept.append(pkt.payload))
    Message.pool_clear()
    ep = net._make_endpoint(0)
    for i in range(5):
        m = Message(sender=0, mid=(0, i), body=("body", i), body_size=8)
        ep.unicast(1, m, m.size_bytes)
    runtime.run_for(0.3)
    stats = Message.pool_stats()
    assert stats["recycled"] == 0
    assert stats["rejected"] == 5
    assert [m.body for m in kept] == [("body", i) for i in range(5)]
