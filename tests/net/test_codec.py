"""Round-trip property tests for the binary wire codec."""

import pickle
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.net.codec import (
    FRAME_OVERHEAD,
    MAGIC,
    VERSION_BINARY,
    VERSION_PICKLE,
    WireCodec,
    register_header_codec,
    registered_header_keys,
)
from repro.stack.message import Message

# ---------------------------------------------------------------------------
# Strategies: one per registered header key, matching what its layer ships.
# ---------------------------------------------------------------------------
ranks = st.integers(0, 999)
seqs = st.integers(0, 2**31 - 1)

HEADER_STRATEGIES = {
    "fifo": seqs,
    "mux": st.integers(0, 2**16 - 1),
    "batch": st.fixed_dictionaries({"n": st.integers(0, 2**16 - 1)}),
    "seqr": st.one_of(
        st.just({"k": "raw"}),
        st.fixed_dictionaries({"k": st.just("ord"), "gseq": seqs}),
    ),
    "tring": st.one_of(
        st.fixed_dictionaries({"k": st.just("dat"), "gseq": seqs}),
        st.fixed_dictionaries(
            {"k": st.just("tok"), "gseq": seqs, "ep": st.integers(0, 2**31)}
        ),
    ),
    "rel": st.one_of(
        st.fixed_dictionaries(
            {
                "k": st.just("data"),
                "seq": seqs,
                "dk": st.one_of(
                    st.just("G"),
                    st.just(()),  # empty dest tuple
                    st.lists(ranks, min_size=1, max_size=5, unique=True).map(
                        lambda l: tuple(sorted(l))
                    ),
                    # Wide tuples past the old u8 count limit.
                    st.integers(250, 400).map(lambda n: tuple(range(n))),
                ),
                "src": ranks,
            }
        ),
        st.sampled_from([{"k": "nak"}, {"k": "ack"}, {"k": "hb"}]),
    ),
    "conf": st.sampled_from(["clear", "sealed"]),
    "prio": st.sampled_from([{"k": "data"}, {"k": "release"}]),
}

# Unregistered headers travel through the generic TLV (or pickle) path.
generic_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-(2**70), 2**70),
        st.floats(allow_nan=False),
        st.text(max_size=12),
        st.binary(max_size=12),
    ),
    lambda leaf: st.one_of(
        st.tuples(leaf, leaf),
        st.lists(leaf, max_size=3),
        st.dictionaries(st.text(string.ascii_lowercase, max_size=4), leaf, max_size=3),
    ),
    max_leaves=8,
)

bodies = st.one_of(
    st.none(),
    st.text(max_size=64),
    st.binary(max_size=64),
    st.tuples(st.text(max_size=8), st.integers(-(2**40), 2**40)),
    st.dictionaries(st.text(max_size=4), st.integers(), max_size=4),
)


def assert_messages_equal(a: Message, b: Message) -> None:
    assert a.sender == b.sender
    assert a.mid == b.mid
    assert a.body == b.body
    assert a.body_size == b.body_size
    assert a.dest == b.dest
    assert a.size_bytes == b.size_bytes
    assert dict(a.headers) == dict(b.headers)


@st.composite
def wire_messages(draw):
    keys = draw(
        st.lists(
            st.sampled_from(sorted(registered_header_keys())),
            unique=True,
            max_size=6,
        )
    )
    msg = Message(
        sender=draw(ranks),
        mid=(draw(ranks), draw(st.integers(-1, 2**40))),
        body=draw(bodies),
        body_size=draw(st.integers(0, 2**20)),
        dest=draw(
            st.one_of(
                st.none(),
                st.lists(ranks, max_size=4).map(tuple),
            )
        ),
    )
    for key in keys:
        msg = msg.with_header(
            key, draw(HEADER_STRATEGIES[key]), draw(st.integers(0, 64))
        )
    if draw(st.booleans()):
        msg = msg.with_header("x-custom", draw(generic_values), 8)
    return msg


@settings(max_examples=200, deadline=None)
@given(msg=wire_messages(), src=ranks, dst=ranks)
def test_message_round_trip(msg, src, dst):
    codec = WireCodec()
    got_src, got_dst, back = codec.decode(codec.encode(src, dst, msg))
    assert (got_src, got_dst) == (src, dst)
    assert_messages_equal(msg, back)


@settings(max_examples=100, deadline=None)
@given(value=generic_values)
def test_generic_value_round_trip(value):
    codec = WireCodec()
    __, __, back = codec.decode(codec.encode(0, 1, value))
    assert back == value


def test_registered_keys_cover_hot_layers():
    keys = set(registered_header_keys())
    assert {"fifo", "seqr", "tring", "rel", "batch", "mux"} <= keys


def test_batch_frame_round_trips_nested_messages():
    codec = WireCodec()
    inner = tuple(
        Message(sender=i, mid=(i, 7), body=f"m{i}", body_size=4).with_header(
            "fifo", i, 4
        )
        for i in range(4)
    )
    frame = Message(
        sender=0, mid=(0, 50), body=inner, body_size=16
    ).with_header("batch", {"n": 4}, 8)
    __, __, back = codec.decode(codec.encode(0, 2, frame))
    assert_messages_equal(frame, back)
    for a, b in zip(inner, back.body):
        assert_messages_equal(a, b)


def test_smaller_and_correct_vs_pickle_for_sequencer_data():
    codec = WireCodec()
    msg = (
        Message(sender=3, mid=(3, 41), body=("payload", 41), body_size=256)
        .with_header("fifo", 41, 4)
        .with_header("seqr", {"k": "ord", "gseq": 1041}, 8)
        .with_header("rel", {"k": "data", "seq": 41, "dk": "G", "src": 3}, 10)
    )
    data = codec.encode(3, 5, msg)
    assert len(data) < len(pickle.dumps((3, 5, msg), -1))


class TestPickleFallback:
    def test_unknown_type_falls_back_and_counts(self):
        codec = WireCodec()

        class Oddball:
            def __init__(self, x):
                self.x = x

            def __eq__(self, other):
                return isinstance(other, Oddball) and other.x == self.x

        global _TestOddball  # picklable
        _TestOddball = Oddball
        Oddball.__qualname__ = "_TestOddball"
        Oddball.__name__ = "_TestOddball"
        __, __, back = codec.decode(codec.encode(0, 1, Oddball(3)))
        assert back == Oddball(3)
        assert codec.stats.get("pickle_fallbacks") == 1

    def test_plain_values_never_fall_back(self):
        codec = WireCodec()
        codec.encode(0, 1, ("abc", 1, None, {"k": (2.5, b"raw")}))
        assert codec.stats.get("pickle_fallbacks") == 0

    def test_fallback_counted_on_obs_scope(self):
        class Scope:
            enabled = True

            def __init__(self):
                self.counts = {}

            def count(self, name, n=1):
                self.counts[name] = self.counts.get(name, 0) + n

        scope = Scope()
        codec = WireCodec(obs=scope)
        codec.encode(0, 1, {1, 2, 3})  # sets have no TLV tag
        assert scope.counts["codec.pickle_fallbacks"] == 1


class TestFraming:
    def test_bad_magic_rejected(self):
        codec = WireCodec()
        data = bytearray(codec.encode(0, 1, "hi"))
        data[0] ^= 0xFF
        with pytest.raises(NetworkError, match="magic"):
            codec.decode(bytes(data))

    def test_unknown_version_rejected(self):
        codec = WireCodec()
        data = bytearray(codec.encode(0, 1, "hi"))
        data[1] = 9
        with pytest.raises(NetworkError, match="version"):
            codec.decode(bytes(data))

    def test_trailing_garbage_rejected(self):
        codec = WireCodec()
        with pytest.raises(NetworkError, match="trailing"):
            codec.decode(codec.encode(0, 1, "hi") + b"junk")

    def test_pickle_version_decodes(self):
        codec = WireCodec()
        body = pickle.dumps({"legacy": True}, -1)
        data = codec.frame(4, 7, body, version=VERSION_PICKLE)
        assert codec.decode(data) == (4, 7, {"legacy": True})

    def test_frame_prefix_is_fixed_size(self):
        codec = WireCodec()
        body = codec.encode_payload("payload")
        one = codec.frame(0, 1, body)
        other = codec.frame(0, 2, body)
        assert len(one) == len(other) == FRAME_OVERHEAD + len(body)
        assert one[FRAME_OVERHEAD:] == other[FRAME_OVERHEAD:]  # reused bytes

    def test_custom_codec_registration_round_trips(self):
        marker = "x-test-codec"
        register_header_codec(
            marker,
            lambda v: bytes([v]),
            lambda raw: raw[0],
        )
        try:
            codec = WireCodec()
            msg = Message(sender=0, mid=(0, 1), body=None, body_size=0)
            msg = msg.with_header(marker, 7, 1)
            __, __, back = codec.decode(codec.encode(0, 1, msg))
            assert back.header(marker) == 7
        finally:
            # Re-register with a pack that always defers to the generic
            # path, so later tests see the default behaviour.
            register_header_codec(
                marker,
                lambda v: bytes([v]),
                lambda raw: raw[0],
            )


class TestRelHeaderCodec:
    """The reliable layer's header: u16 dest-key count + legacy decode."""

    def _roundtrip(self, value):
        from repro.net.codec import _pack_rel, _unpack_rel

        return _unpack_rel(_pack_rel(value))

    def test_wide_dest_tuple_survives(self):
        # 300 ranks overflowed the old u8 count byte.
        value = {"k": "data", "seq": 9, "dk": tuple(range(300)), "src": 2}
        assert self._roundtrip(value) == value

    def test_empty_dest_tuple_survives(self):
        value = {"k": "data", "seq": 0, "dk": (), "src": 0}
        assert self._roundtrip(value) == value

    def test_legacy_u8_frames_still_decode(self):
        import struct

        from repro.net.codec import _unpack_rel

        # A pre-widening frame: shape 0x01, u8 count.
        legacy = (
            b"\x01" + struct.pack("!IH", 7, 3)
            + bytes([2]) + struct.pack("!2H", 10, 20)
        )
        assert _unpack_rel(legacy) == {
            "k": "data", "seq": 7, "dk": (10, 20), "src": 3,
        }

    def test_dispatch_is_on_kind_not_dict_width(self):
        from repro.net.codec import _pack_rel

        # A data header missing its fields is rejected as malformed,
        # not silently packed as kind-only.
        with pytest.raises(ValueError):
            _pack_rel({"k": "data"})
        with pytest.raises(ValueError):
            _pack_rel({"k": "bogus"})

    def test_kind_only_headers_round_trip(self):
        for kind in ("nak", "ack", "hb"):
            assert self._roundtrip({"k": kind}) == {"k": kind}

    @settings(max_examples=100, deadline=None)
    @given(
        seq=seqs,
        src=st.integers(0, 2**16 - 1),
        dk=st.one_of(
            st.just("G"),
            st.just(()),
            st.lists(
                st.integers(0, 2**16 - 1), max_size=600, unique=True
            ).map(tuple),
        ),
    )
    def test_data_header_round_trip(self, seq, src, dk):
        value = {"k": "data", "seq": seq, "dk": dk, "src": src}
        assert self._roundtrip(value) == value
