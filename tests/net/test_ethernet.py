"""Unit tests for the shared-Ethernet model."""

import pytest

from repro.errors import NetworkError
from repro.net.ethernet import EthernetNetwork, EthernetParams, HostCpu, SharedMedium
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def make_net(n=3, **params):
    sim = Simulator()
    net = EthernetNetwork(sim, n, EthernetParams(**params), rng=RandomStreams(5))
    return sim, net


def collect(net, node):
    received = []
    endpoint = net.attach(node, received.append)
    return endpoint, received


class TestLatencyModel:
    def test_unicast_latency_is_pipeline_sum(self):
        sim, net = make_net(
            bandwidth_bps=10e6, propagation=100e-6, cpu_send=1e-3, cpu_recv=1e-3
        )
        src, __ = collect(net, 0)
        times = []
        net.attach(1, lambda pkt: times.append(sim.now))
        src.unicast(1, "payload", 1000)
        sim.run()
        expected = 1e-3 + 1000 * 8 / 10e6 + 100e-6 + 1e-3
        assert times == [pytest.approx(expected)]

    def test_serialization_scales_with_size(self):
        sim, net = make_net(cpu_send=0, cpu_recv=0, propagation=0)
        src, __ = collect(net, 0)
        times = []
        net.attach(1, lambda pkt: times.append(sim.now))
        src.unicast(1, "small", 125)  # 100 us at 10 Mbit
        sim.run()
        assert times == [pytest.approx(125 * 8 / 10e6)]


class TestDeliveryAccounting:
    def test_delivery_counter_fires_at_delivery_time_not_schedule_time(self):
        """Regression: `deliveries` used to increment when the receive was
        scheduled — before propagation and the dst CPU queue had run — so
        the counter led reality under backlog."""
        sim, net = make_net(
            n=2, cpu_send=1e-3, cpu_recv=1e-3, propagation=100e-6
        )
        src, __ = collect(net, 0)
        arrivals = []
        net.attach(1, lambda pkt: arrivals.append(sim.now))
        src.unicast(1, "payload", 1000)
        # Run up to the instant the frame leaves the wire: the receive is
        # scheduled (propagation + dst CPU still pending) but nothing has
        # been delivered yet.
        wire_done = 1e-3 + 1000 * 8 / 10e6
        sim.run_until(wire_done + 50e-6)
        assert arrivals == []
        assert net.stats.get("deliveries") == 0
        sim.run()
        assert len(arrivals) == 1
        assert net.stats.get("deliveries") == 1

    def test_delivery_counter_lags_under_dst_cpu_backlog(self):
        sim, net = make_net(n=2, cpu_send=0, cpu_recv=1e-3, propagation=0)
        src, __ = collect(net, 0)
        delivered = []
        net.attach(1, delivered.append)
        # Jam the destination CPU so received frames queue behind it.
        net.cpus[1].run(0.5, lambda: None)
        src.unicast(1, "queued", 125)
        sim.run_until(0.4)  # frame long since off the wire, CPU still busy
        assert net.stats.get("deliveries") == 0
        assert delivered == []
        sim.run()
        assert net.stats.get("deliveries") == 1
        assert len(delivered) == 1


class TestSharedMedium:
    def test_transmissions_queue_on_the_wire(self):
        sim, net = make_net(cpu_send=0, cpu_recv=0, propagation=0)
        a, __ = collect(net, 0)
        b, __ = collect(net, 1)
        times = []
        net.attach(2, lambda pkt: times.append((pkt.src, sim.now)))
        # Both transmit "simultaneously": the second waits for the wire.
        a.unicast(2, "from-a", 1250)  # 1 ms serialization
        b.unicast(2, "from-b", 1250)
        sim.run()
        assert times[0] == (0, pytest.approx(1e-3))
        assert times[1] == (1, pytest.approx(2e-3))

    def test_medium_utilization_accounting(self):
        sim = Simulator()
        medium = SharedMedium(sim)
        medium.transmit(0.5, lambda: None)
        sim.run()
        assert medium.utilization(1.0) == pytest.approx(0.5)
        assert medium.transmissions == 1


class TestHostCpu:
    def test_fifo_queueing(self):
        sim = Simulator()
        cpu = HostCpu(sim, 0)
        done = []
        cpu.run(0.3, lambda: done.append(("a", sim.now)))
        cpu.run(0.3, lambda: done.append(("b", sim.now)))
        sim.run()
        assert done == [("a", pytest.approx(0.3)), ("b", pytest.approx(0.6))]

    def test_backlog(self):
        sim = Simulator()
        cpu = HostCpu(sim, 0)
        cpu.run(0.5, lambda: None)
        assert cpu.backlog == pytest.approx(0.5)

    def test_negative_work_rejected(self):
        cpu = HostCpu(Simulator(), 0)
        with pytest.raises(NetworkError):
            cpu.run(-1.0, lambda: None)

    def test_receiver_cpu_serializes_deliveries(self):
        # Two arrivals contend for the destination CPU.
        sim, net = make_net(cpu_send=0, cpu_recv=1e-3, propagation=0)
        a, __ = collect(net, 0)
        b, __ = collect(net, 1)
        times = []
        net.attach(2, lambda pkt: times.append(sim.now))
        a.unicast(2, "x", 125)
        b.unicast(2, "y", 125)
        sim.run()
        # Serializations end at 0.1ms and 0.2ms; CPU then takes 1ms each,
        # back-to-back.
        assert times[0] == pytest.approx(1.1e-3)
        assert times[1] == pytest.approx(2.1e-3)


class TestMulticast:
    def test_multicast_is_one_wire_transmission(self):
        sim, net = make_net(4, cpu_send=0, cpu_recv=0, propagation=0)
        src, __ = collect(net, 0)
        for node in (1, 2, 3):
            collect(net, node)
        src.multicast((1, 2, 3), "m", 1000)
        sim.run()
        assert net.medium.transmissions == 1

    def test_multicast_reaches_every_destination(self):
        sim, net = make_net(4)
        src, __ = collect(net, 0)
        got = []
        for node in (1, 2, 3):
            net.attach(node, lambda pkt, node=node: got.append(node))
        src.multicast((1, 2, 3), "m", 100)
        sim.run()
        assert sorted(got) == [1, 2, 3]

    def test_loopback_skips_the_wire(self):
        sim, net = make_net(2, cpu_send=0, cpu_recv=0, propagation=0)
        got = []
        endpoint = net.attach(0, lambda pkt: got.append(pkt))
        collect(net, 1)
        endpoint.multicast((0,), "self-only", 100)
        sim.run()
        assert len(got) == 1
        assert net.medium.transmissions == 0

    def test_multicast_including_self(self):
        sim, net = make_net(2)
        got = []
        endpoint = net.attach(0, lambda pkt: got.append("self"))
        net.attach(1, lambda pkt: got.append("other"))
        endpoint.multicast((0, 1), "m", 100)
        sim.run()
        assert sorted(got) == ["other", "self"]

    def test_duplicate_destinations_deduped(self):
        sim, net = make_net(2)
        src, __ = collect(net, 0)
        got = []
        net.attach(1, lambda pkt: got.append(1))
        src.multicast((1, 1, 1), "m", 100)
        sim.run()
        assert got == [1]

    def test_empty_destination_is_noop(self):
        sim, net = make_net(2)
        src, __ = collect(net, 0)
        src.multicast((), "m", 100)
        sim.run()
        assert net.medium.transmissions == 0


class TestFaultsAndValidation:
    def test_loss_rate_drops_packets(self):
        sim, net = make_net(2, loss_rate=0.5)
        src, __ = collect(net, 0)
        got = []
        net.attach(1, lambda pkt: got.append(pkt))
        for __unused in range(200):
            src.unicast(1, "x", 100)
        sim.run()
        assert 40 < len(got) < 160  # ~100 expected
        assert net.stats.get("drops") == 200 - len(got)

    def test_jitter_adds_bounded_delay(self):
        sim, net = make_net(2, cpu_send=0, cpu_recv=0, propagation=0, jitter=1e-3)
        src, __ = collect(net, 0)
        times = []
        net.attach(1, lambda pkt: times.append(sim.now - pkt.sent_at))
        for __unused in range(50):
            src.unicast(1, "x", 125)
            sim.run()
        serialization = 125 * 8 / 10e6
        assert all(serialization <= t <= serialization * 50 + 1e-3 for t in times)
        assert len({round(t, 9) for t in times}) > 1  # jitter actually varies

    def test_unknown_destination_rejected(self):
        sim, net = make_net(2)
        src, __ = collect(net, 0)
        with pytest.raises(NetworkError):
            src.unicast(7, "x", 10)

    def test_double_attach_rejected(self):
        sim, net = make_net(2)
        net.attach(0, lambda pkt: None)
        with pytest.raises(NetworkError):
            net.attach(0, lambda pkt: None)

    def test_params_validation(self):
        with pytest.raises(NetworkError):
            EthernetParams(loss_rate=1.5)
        with pytest.raises(NetworkError):
            EthernetParams(bandwidth_bps=0)
        with pytest.raises(NetworkError):
            EthernetParams(propagation=-1)

    def test_unattached_destination_is_skipped(self):
        sim, net = make_net(3)
        src, __ = collect(net, 0)
        got = []
        net.attach(1, lambda pkt: got.append(1))
        # Node 2 never attaches; the multicast still reaches node 1.
        src.multicast((1, 2), "m", 100)
        sim.run()
        assert got == [1]


class TestSniffer:
    def test_sniffer_sees_every_frame(self):
        sim, net = make_net(3)
        src, __ = collect(net, 0)
        collect(net, 1)
        collect(net, 2)
        frames = []
        net.attach_sniffer(frames.append)
        src.unicast(1, "one", 100)
        src.multicast((1, 2), "two", 100)
        sim.run()
        assert [f.payload for f in frames] == ["one", "two"]

    def test_sniffer_does_not_see_loopback(self):
        sim, net = make_net(2)
        endpoint = net.attach(0, lambda pkt: None)
        collect(net, 1)
        frames = []
        net.attach_sniffer(frames.append)
        endpoint.multicast((0,), "private", 100)
        sim.run()
        assert frames == []
