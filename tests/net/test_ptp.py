"""Unit tests for the point-to-point network model."""

import pytest

from repro.errors import NetworkError
from repro.net.faults import FaultPlan, Partition
from repro.net.ptp import LatencyMatrix, PointToPointNetwork
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def make_net(n=3, latency=None, faults=None, seed=9):
    sim = Simulator()
    net = PointToPointNetwork(
        sim, n, latency=latency, faults=faults, rng=RandomStreams(seed)
    )
    return sim, net


class TestLatencyMatrix:
    def test_base_latency_default(self):
        matrix = LatencyMatrix(3, base_latency=2e-3)
        assert matrix.get(0, 1) == 2e-3

    def test_loopback_is_fast(self):
        matrix = LatencyMatrix(3, base_latency=2e-3)
        assert matrix.get(1, 1) == pytest.approx(2e-4)

    def test_overrides(self):
        matrix = LatencyMatrix(3)
        matrix.set(0, 1, 5e-3)
        assert matrix.get(0, 1) == 5e-3
        assert matrix.get(1, 0) == matrix.base_latency

    def test_symmetric_override(self):
        matrix = LatencyMatrix(3)
        matrix.set_symmetric(0, 2, 7e-3)
        assert matrix.get(0, 2) == 7e-3
        assert matrix.get(2, 0) == 7e-3

    def test_negative_rejected(self):
        with pytest.raises(NetworkError):
            LatencyMatrix(2, base_latency=-1)
        with pytest.raises(NetworkError):
            LatencyMatrix(2).set(0, 1, -1)


class TestDelivery:
    def test_unicast_uses_matrix_latency(self):
        matrix = LatencyMatrix(2, base_latency=3e-3)
        sim, net = make_net(2, latency=matrix)
        endpoint = net.attach(0, lambda pkt: None)
        times = []
        net.attach(1, lambda pkt: times.append(sim.now))
        endpoint.unicast(1, "x", 10)
        sim.run()
        assert times == [pytest.approx(3e-3)]

    def test_multicast_fans_out_independently(self):
        matrix = LatencyMatrix(3)
        matrix.set(0, 1, 1e-3)
        matrix.set(0, 2, 5e-3)
        sim, net = make_net(3, latency=matrix)
        src = net.attach(0, lambda pkt: None)
        arrivals = []
        net.attach(1, lambda pkt: arrivals.append((1, sim.now)))
        net.attach(2, lambda pkt: arrivals.append((2, sim.now)))
        src.multicast((1, 2), "m", 10)
        sim.run()
        assert arrivals == [(1, pytest.approx(1e-3)), (2, pytest.approx(5e-3))]

    def test_delivery_to_unattached_node_counted_dead(self):
        sim, net = make_net(2)
        src = net.attach(0, lambda pkt: None)
        src.unicast(1, "x", 10)
        sim.run()
        assert net.stats.get("dead_letters") == 1

    def test_matrix_size_mismatch_rejected(self):
        with pytest.raises(NetworkError):
            PointToPointNetwork(Simulator(), 3, latency=LatencyMatrix(2))


class TestFaultInjection:
    def test_loss_recovered_counts(self):
        sim, net = make_net(2, faults=FaultPlan(loss_rate=0.4))
        src = net.attach(0, lambda pkt: None)
        got = []
        net.attach(1, lambda pkt: got.append(pkt))
        for __ in range(300):
            src.unicast(1, "x", 10)
        sim.run()
        assert 120 <= len(got) <= 240
        assert net.stats.get("drops") + len(got) == 300

    def test_duplication_delivers_twice(self):
        sim, net = make_net(2, faults=FaultPlan(duplicate_rate=0.99))
        src = net.attach(0, lambda pkt: None)
        got = []
        net.attach(1, lambda pkt: got.append(pkt))
        src.unicast(1, "x", 10)
        sim.run()
        assert len(got) == 2

    def test_loopback_is_immune_to_faults(self):
        sim, net = make_net(2, faults=FaultPlan(loss_rate=0.99))
        got = []
        endpoint = net.attach(0, lambda pkt: got.append(pkt))
        net.attach(1, lambda pkt: None)
        for __ in range(20):
            endpoint.multicast((0,), "self", 10)
        sim.run()
        assert len(got) == 20

    def test_partition_blocks_then_heals(self):
        plan = FaultPlan(partitions=[Partition.split(0.0, 1.0, [0], [1])])
        sim, net = make_net(2, faults=plan)
        src = net.attach(0, lambda pkt: None)
        got = []
        net.attach(1, lambda pkt: got.append(sim.now))
        src.unicast(1, "blocked", 10)
        sim.run_until(1.0)
        assert got == []
        sim.run_until(1.5)  # advance past heal
        src.unicast(1, "through", 10)
        sim.run()
        assert len(got) == 1

    def test_reordering_can_swap_packets(self):
        sim, net = make_net(2, faults=FaultPlan(reorder_jitter=5e-3), seed=3)
        src = net.attach(0, lambda pkt: None)
        got = []
        net.attach(1, lambda pkt: got.append(pkt.payload))
        for i in range(30):
            src.unicast(1, i, 10)
        sim.run()
        assert sorted(got) == list(range(30))
        assert got != list(range(30))  # at least one swap happened


class TestCrashAndRecovery:
    """Dynamic fail/recover plus the Counter-reported recovery metrics."""

    def test_fail_and_recover_are_counted_and_idempotent(self):
        sim, net = make_net(2)
        net.attach(0, lambda pkt: None)
        net.fail_node(0)
        net.fail_node(0)  # idempotent: still one failure
        assert not net.node_alive(0)
        assert net.stats.get("node_failures") == 1
        net.recover_node(0)
        net.recover_node(0)
        assert net.node_alive(0)
        assert net.stats.get("node_recoveries") == 1

    def test_recover_without_crash_counts_nothing(self):
        sim, net = make_net(2)
        net.recover_node(1)
        assert net.stats.get("node_recoveries") == 0

    def test_crashed_sender_drops_at_interface(self):
        sim, net = make_net(2)
        src = net.attach(0, lambda pkt: None)
        got = []
        net.attach(1, lambda pkt: got.append(pkt))
        net.fail_node(0)
        src.unicast(1, "dead", 10)
        sim.run()
        assert got == []
        assert net.stats.get("crash_drops") == 1

    def test_crashed_receiver_drops_even_in_flight_copies(self):
        sim, net = make_net(2)
        src = net.attach(0, lambda pkt: None)
        got = []
        net.attach(1, lambda pkt: got.append(pkt))
        src.unicast(1, "in-flight", 10)
        net.fail_node(1)  # crashes before the copy lands
        sim.run()
        assert got == []
        assert net.stats.get("crash_drops") == 1

    def test_crashed_loopback_is_dropped_too(self):
        sim, net = make_net(2)
        got = []
        endpoint = net.attach(0, lambda pkt: got.append(pkt))
        net.fail_node(0)
        endpoint.multicast((0,), "self", 10)
        sim.run()
        assert got == []

    def test_scheduled_crash_window_from_fault_plan(self):
        from repro.net.faults import Crash

        sim, net = make_net(2, faults=FaultPlan(crashes=[Crash(1, 0.0, 1.0)]))
        src = net.attach(0, lambda pkt: None)
        got = []
        net.attach(1, lambda pkt: got.append(sim.now))
        src.unicast(1, "early", 10)
        sim.run_until(2.0)
        assert got == []
        assert not net.node_alive(1) if sim.now < 1.0 else net.node_alive(1)
        src.unicast(1, "late", 10)
        sim.run()
        assert len(got) == 1

    def test_delivery_counter_tracks_arrivals(self):
        sim, net = make_net(2)
        src = net.attach(0, lambda pkt: None)
        net.attach(1, lambda pkt: None)
        for __ in range(5):
            src.unicast(1, "x", 10)
        sim.run()
        assert net.stats.get("deliveries") == 5
        assert net.stats.get("sends") == 5
