"""Pinned wire bytes: the single-group frame must never drift.

These hex strings were captured from the codec *before* the group-id
frame extension landed.  Group 0 — every single-group run — must keep
emitting exactly these bytes: peers speaking the pre-group wire format
interoperate with it, and the repo's parity artifacts depend on it.

If a codec change breaks these assertions, that change is a wire-format
break for every existing deployment — bump the frame version instead.
"""

from repro.net.codec import WireCodec
from repro.stack.message import Message

#: codec.encode(2, 5, headered_message()) before the group extension.
PINNED_HEADERED = (
    "c501000200050b00000200020000000000000007000000400000000bff0000"
    "00001c7b750100000078690100000075010000007467000000000000e03f30"
    "030405010000002901040000000902020001"
)

#: codec.frame(3, 4, encode_payload(headered_message())) before it.
PINNED_FRAMED = (
    "c501000300040b00000200020000000000000007000000400000000bff0000"
    "00001c7b750100000078690100000075010000007467000000000000e03f30"
    "030405010000002901040000000902020001"
)

#: codec.encode(1, 2, mixed_tuple()) before it.
PINNED_TUPLE = (
    "c501000100020800000005060000000568656c6c6f03000000000000002a05"
    "400c0000000000000007000000020001"
)


def headered_message():
    return (
        Message(2, (2, 7), {"x": 1, "t": 0.5}, 64)
        .with_header("seqr", {"k": "ord", "gseq": 41}, 5)
        .with_header("fifo", 9, 4)
        .with_header("mux", 1, 2)
    )


def test_headered_message_bytes_pinned():
    codec = WireCodec()
    assert codec.encode(2, 5, headered_message()).hex() == PINNED_HEADERED


def test_frame_bytes_pinned():
    codec = WireCodec()
    body = codec.encode_payload(headered_message())
    assert codec.frame(3, 4, body).hex() == PINNED_FRAMED


def test_tuple_payload_bytes_pinned():
    codec = WireCodec()
    payload = ("hello", 42, 3.5, None, b"\x00\x01")
    assert codec.encode(1, 2, payload).hex() == PINNED_TUPLE


def test_pinned_bytes_still_decode():
    codec = WireCodec()
    src, dst, msg = codec.decode(bytes.fromhex(PINNED_HEADERED))
    assert (src, dst) == (2, 5)
    assert msg.header("fifo") == 9
    assert msg.header("seqr") == {"k": "ord", "gseq": 41}
    assert msg.body == {"x": 1, "t": 0.5}

    src, dst, payload = codec.decode(bytes.fromhex(PINNED_TUPLE))
    assert (src, dst) == (1, 2)
    assert payload == ("hello", 42, 3.5, None, b"\x00\x01")
