"""Unit tests for fault plans, partitions, crashes and link overrides."""

import random

import pytest

from repro.errors import NetworkError
from repro.net.faults import (
    Crash,
    FaultDecision,
    FaultPlan,
    LinkFaults,
    Partition,
)


class TestPartition:
    def test_split_groups(self):
        partition = Partition.split(1.0, 2.0, [0, 1], [2, 3])
        assert partition.active_at(1.5)
        assert not partition.active_at(0.5)
        assert not partition.active_at(2.0)  # end-exclusive
        assert partition.allows(0, 1)
        assert partition.allows(2, 3)
        assert not partition.allows(0, 2)

    def test_node_outside_all_groups_is_isolated(self):
        partition = Partition.split(0.0, 1.0, [0, 1])
        assert not partition.allows(0, 5)
        assert not partition.allows(5, 5)

    def test_overlapping_groups_rejected(self):
        with pytest.raises(NetworkError):
            Partition.split(0.0, 1.0, [0, 1], [1, 2])

    def test_empty_window_rejected(self):
        with pytest.raises(NetworkError):
            Partition.split(2.0, 2.0, [0])


class TestFaultPlan:
    def test_lossless_default(self):
        assert FaultPlan().is_lossless()

    def test_validation(self):
        with pytest.raises(NetworkError):
            FaultPlan(loss_rate=1.0)
        with pytest.raises(NetworkError):
            FaultPlan(duplicate_rate=-0.1)
        with pytest.raises(NetworkError):
            FaultPlan(reorder_jitter=-1)

    def test_partition_drops_cross_traffic(self):
        plan = FaultPlan(partitions=[Partition.split(0.0, 1.0, [0], [1])])
        rng = random.Random(0)
        assert plan.decide(rng, 0.5, 0, 1).drop
        assert not plan.decide(rng, 1.5, 0, 1).drop  # partition healed

    def test_loss_probability_roughly_respected(self):
        plan = FaultPlan(loss_rate=0.3)
        rng = random.Random(1)
        drops = sum(plan.decide(rng, 0, 0, 1).drop for __ in range(1000))
        assert 230 <= drops <= 370

    def test_duplicates_flagged(self):
        plan = FaultPlan(duplicate_rate=0.5)
        rng = random.Random(2)
        dups = sum(plan.decide(rng, 0, 0, 1).duplicates for __ in range(200))
        assert 60 <= dups <= 140

    def test_reorder_jitter_bounded(self):
        plan = FaultPlan(reorder_jitter=0.01)
        rng = random.Random(3)
        for __ in range(100):
            decision = plan.decide(rng, 0, 0, 1)
            assert 0.0 <= decision.extra_delay <= 0.01


class TestCrash:
    def test_validation(self):
        with pytest.raises(NetworkError):
            Crash(0, at=-0.1)
        with pytest.raises(NetworkError):
            Crash(0, at=1.0, until=1.0)  # empty window

    def test_down_window_is_half_open(self):
        crash = Crash(1, at=1.0, until=2.0)
        assert not crash.down_at(0.5)
        assert crash.down_at(1.0)
        assert crash.down_at(1.999)
        assert not crash.down_at(2.0)

    def test_default_crash_is_permanent(self):
        crash = Crash(1, at=1.0)
        assert crash.down_at(1e9)

    def test_node_alive_consults_all_crashes(self):
        plan = FaultPlan(crashes=[Crash(1, 1.0, 2.0), Crash(1, 3.0, 4.0)])
        assert plan.node_alive(1, 0.5)
        assert not plan.node_alive(1, 1.5)
        assert plan.node_alive(1, 2.5)
        assert not plan.node_alive(1, 3.5)
        assert plan.node_alive(0, 1.5)  # other nodes unaffected

    def test_crashed_endpoint_drops_both_directions(self):
        plan = FaultPlan(crashes=[Crash(1, 1.0, 2.0)])
        rng = random.Random(0)
        assert plan.decide(rng, 1.5, 1, 0).drop  # crashed sender
        assert plan.decide(rng, 1.5, 0, 1).drop  # crashed receiver
        assert not plan.decide(rng, 2.5, 0, 1).drop  # recovered

    def test_crashes_make_plan_lossy(self):
        assert not FaultPlan(crashes=[Crash(0, 0.0)]).is_lossless()


class TestLinkFaults:
    def test_validation(self):
        with pytest.raises(NetworkError):
            LinkFaults(loss_rate=1.0)
        with pytest.raises(NetworkError):
            LinkFaults(duplicate_rate=-0.1)
        with pytest.raises(NetworkError):
            LinkFaults(reorder_jitter=-1.0)

    def test_link_override_beats_plan_rate(self):
        plan = FaultPlan(
            loss_rate=0.5, links={(0, 1): LinkFaults(loss_rate=0.0)}
        )
        rng = random.Random(4)
        # The overridden link never drops; the others keep the plan rate.
        assert not any(plan.decide(rng, 0, 0, 1).drop for __ in range(200))
        drops = sum(plan.decide(rng, 0, 0, 2).drop for __ in range(200))
        assert drops > 0

    def test_unset_link_fields_inherit_plan_rates(self):
        plan = FaultPlan(
            reorder_jitter=0.01,
            links={(0, 1): LinkFaults(duplicate_rate=0.9)},
        )
        rng = random.Random(5)
        decisions = [plan.decide(rng, 0, 0, 1) for __ in range(200)]
        assert sum(d.duplicates for d in decisions) > 100  # link override
        assert any(d.extra_delay > 0 for d in decisions)  # inherited jitter

    def test_links_make_plan_lossy(self):
        plan = FaultPlan(links={(0, 1): LinkFaults(loss_rate=0.5)})
        assert not plan.is_lossless()


class TestChannelScoping:
    def test_faults_hit_only_the_scoped_channel(self):
        plan = FaultPlan(loss_rate=0.9, channels=frozenset({0}))
        rng = random.Random(6)
        on_channel = sum(
            plan.decide(rng, 0, 0, 1, channel=0).drop for __ in range(100)
        )
        off_channel = sum(
            plan.decide(rng, 0, 0, 1, channel=1).drop for __ in range(100)
        )
        unknown = sum(
            plan.decide(rng, 0, 0, 1, channel=None).drop for __ in range(100)
        )
        assert on_channel > 50
        assert off_channel == 0
        assert unknown == 0

    def test_crashes_apply_to_every_channel(self):
        plan = FaultPlan(crashes=[Crash(1, 0.0)], channels=frozenset({0}))
        rng = random.Random(7)
        assert plan.decide(rng, 1.0, 0, 1, channel=5).drop

    def test_partitions_apply_to_every_channel(self):
        plan = FaultPlan(
            partitions=[Partition.split(0.0, 1.0, [0], [1])],
            channels=frozenset({0}),
        )
        rng = random.Random(7)
        assert plan.decide(rng, 0.5, 0, 1, channel=3).drop

    def test_channels_normalised_to_frozenset(self):
        plan = FaultPlan(channels={0, 1})
        assert isinstance(plan.channels, frozenset)


class TestIntercept:
    def test_intercept_dictates_the_fate(self):
        plan = FaultPlan(
            loss_rate=0.0,
            intercept=lambda t, s, d, ch, p: FaultDecision(drop=True),
        )
        rng = random.Random(8)
        assert plan.decide(rng, 0, 0, 1).drop

    def test_intercept_none_falls_through(self):
        seen = []

        def spy(time, src, dst, channel, payload):
            seen.append((time, src, dst, channel, payload))
            return None

        plan = FaultPlan(loss_rate=0.0, intercept=spy)
        rng = random.Random(8)
        decision = plan.decide(rng, 1.5, 0, 2, channel=0, payload="tok")
        assert not decision.drop
        assert seen == [(1.5, 0, 2, 0, "tok")]

    def test_crashes_take_precedence_over_intercept(self):
        seen = []

        def spy(time, src, dst, channel, payload):
            seen.append(payload)
            return None

        plan = FaultPlan(crashes=[Crash(1, 0.0)], intercept=spy)
        rng = random.Random(8)
        assert plan.decide(rng, 0.5, 0, 1, payload="x").drop
        assert seen == []  # the copy died at the crashed interface

    def test_intercept_makes_plan_lossy(self):
        plan = FaultPlan(intercept=lambda t, s, d, ch, p: None)
        assert not plan.is_lossless()
