"""Unit tests for fault plans and partitions."""

import random

import pytest

from repro.errors import NetworkError
from repro.net.faults import FaultPlan, Partition


class TestPartition:
    def test_split_groups(self):
        partition = Partition.split(1.0, 2.0, [0, 1], [2, 3])
        assert partition.active_at(1.5)
        assert not partition.active_at(0.5)
        assert not partition.active_at(2.0)  # end-exclusive
        assert partition.allows(0, 1)
        assert partition.allows(2, 3)
        assert not partition.allows(0, 2)

    def test_node_outside_all_groups_is_isolated(self):
        partition = Partition.split(0.0, 1.0, [0, 1])
        assert not partition.allows(0, 5)
        assert not partition.allows(5, 5)

    def test_overlapping_groups_rejected(self):
        with pytest.raises(NetworkError):
            Partition.split(0.0, 1.0, [0, 1], [1, 2])

    def test_empty_window_rejected(self):
        with pytest.raises(NetworkError):
            Partition.split(2.0, 2.0, [0])


class TestFaultPlan:
    def test_lossless_default(self):
        assert FaultPlan().is_lossless()

    def test_validation(self):
        with pytest.raises(NetworkError):
            FaultPlan(loss_rate=1.0)
        with pytest.raises(NetworkError):
            FaultPlan(duplicate_rate=-0.1)
        with pytest.raises(NetworkError):
            FaultPlan(reorder_jitter=-1)

    def test_partition_drops_cross_traffic(self):
        plan = FaultPlan(partitions=[Partition.split(0.0, 1.0, [0], [1])])
        rng = random.Random(0)
        assert plan.decide(rng, 0.5, 0, 1).drop
        assert not plan.decide(rng, 1.5, 0, 1).drop  # partition healed

    def test_loss_probability_roughly_respected(self):
        plan = FaultPlan(loss_rate=0.3)
        rng = random.Random(1)
        drops = sum(plan.decide(rng, 0, 0, 1).drop for __ in range(1000))
        assert 230 <= drops <= 370

    def test_duplicates_flagged(self):
        plan = FaultPlan(duplicate_rate=0.5)
        rng = random.Random(2)
        dups = sum(plan.decide(rng, 0, 0, 1).duplicates for __ in range(200))
        assert 60 <= dups <= 140

    def test_reorder_jitter_bounded(self):
        plan = FaultPlan(reorder_jitter=0.01)
        rng = random.Random(3)
        for __ in range(100):
            decision = plan.decide(rng, 0, 0, 1)
            assert 0.0 <= decision.extra_delay <= 0.01
