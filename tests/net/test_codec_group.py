"""Group-id framing: varint boundaries, legacy parity, and round trips.

The fleet runtime multiplexes thousands of groups over one socket per
node, so every frame carries a group id — except group 0, the
single-group world, which must stay byte-identical to the pre-group
codec (``test_wire_pin.py`` pins the exact bytes).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.net.codec import (
    FRAME_OVERHEAD,
    MAX_GROUP_ID,
    VERSION_BINARY,
    VERSION_GROUP,
    WireCodec,
)
from repro.stack.message import Message

#: The varint edges: one byte up to 127, then one more byte per 7 bits.
BOUNDARY_IDS = [
    1,
    2**7 - 1,
    2**7,
    2**14 - 1,
    2**14,
    2**21 - 1,
    2**21,
    MAX_GROUP_ID,
]


def sample_message():
    return Message(sender=1, mid=(1, 9), body="payload", body_size=16)


class TestGroupZeroParity:
    def test_group_zero_emits_legacy_version(self):
        codec = WireCodec()
        data = codec.encode(3, 4, sample_message(), group=0)
        assert data[1] == VERSION_BINARY

    def test_group_zero_is_the_default(self):
        codec = WireCodec()
        msg = sample_message()
        assert codec.encode(3, 4, msg) == codec.encode(3, 4, msg, group=0)

    def test_group_zero_frame_matches_explicit(self):
        codec = WireCodec()
        body = codec.encode_payload(sample_message())
        assert codec.frame(3, 4, body) == codec.frame(3, 4, body, group=0)

    def test_decode_datagram_reports_group_zero_for_legacy(self):
        codec = WireCodec()
        data = codec.encode(3, 4, sample_message())
        group, src, dst, __ = codec.decode_datagram(data)
        assert (group, src, dst) == (0, 3, 4)


class TestGroupBoundaries:
    @pytest.mark.parametrize("group", BOUNDARY_IDS)
    def test_round_trip(self, group):
        codec = WireCodec()
        msg = sample_message()
        data = codec.encode(5, 6, msg, group=group)
        assert data[1] == VERSION_GROUP
        got_group, src, dst, back = codec.decode_datagram(data)
        assert (got_group, src, dst) == (group, 5, 6)
        assert back.body == msg.body

    @pytest.mark.parametrize("group", BOUNDARY_IDS)
    def test_frame_and_encode_agree(self, group):
        codec = WireCodec()
        msg = sample_message()
        body = codec.encode_payload(msg)
        assert codec.frame(5, 6, body, group=group) == codec.encode(
            5, 6, msg, group=group
        )

    @pytest.mark.parametrize(
        "last, first, width",
        [
            (2**7 - 1, 2**7, 1),
            (2**14 - 1, 2**14, 2),
            (2**21 - 1, 2**21, 3),
        ],
    )
    def test_varint_width_steps_at_seven_bit_multiples(
        self, last, first, width
    ):
        # ``last`` is the widest id of its byte class; ``first`` needs
        # one more byte.
        codec = WireCodec()
        body = codec.encode_payload("x")
        assert len(codec.frame(0, 1, body, group=last)) == (
            FRAME_OVERHEAD + width + len(body)
        )
        assert len(codec.frame(0, 1, body, group=first)) == (
            FRAME_OVERHEAD + width + 1 + len(body)
        )

    def test_u32_cap_takes_five_bytes(self):
        codec = WireCodec()
        body = codec.encode_payload("x")
        data = codec.frame(0, 1, body, group=MAX_GROUP_ID)
        assert len(data) == FRAME_OVERHEAD + 5 + len(body)
        assert codec.decode_datagram(data)[0] == MAX_GROUP_ID

    def test_shard_placement_is_stable_at_the_boundaries(self):
        # The ids whose wire width changes are exactly the ids a
        # placement bug would scramble; their home shard is a pure
        # function of (id, shards) on both sides of each edge.
        from repro.fleet.sharding import shard_of

        for group in BOUNDARY_IDS:
            for shards in (1, 2, 4, 7):
                assert shard_of(group, shards) == shard_of(group, shards)
                assert 0 <= shard_of(group, shards) < shards

    @pytest.mark.parametrize("group", [-1, MAX_GROUP_ID + 1])
    def test_out_of_range_rejected(self, group):
        codec = WireCodec()
        with pytest.raises(NetworkError, match="group id"):
            codec.encode(0, 1, "hi", group=group)
        with pytest.raises(NetworkError, match="group id"):
            codec.frame(0, 1, codec.encode_payload("hi"), group=group)

    def test_oversized_varint_rejected_on_decode(self):
        codec = WireCodec()
        # Six continuation bytes: more than a u32 can ever need.
        data = bytes([0xC5, VERSION_GROUP, 0, 0, 0, 1]) + b"\xff" * 6 + b"\x01"
        with pytest.raises(NetworkError, match="varint"):
            codec.decode_datagram(data)

    def test_value_over_u32_rejected_on_decode(self):
        codec = WireCodec()
        # A five-byte varint whose value exceeds the u32 group-id range.
        data = bytes([0xC5, VERSION_GROUP, 0, 0, 0, 1]) + b"\xff" * 4 + b"\x1f"
        with pytest.raises(NetworkError, match="group id"):
            codec.decode_datagram(data)


@settings(max_examples=100, deadline=None)
@given(
    group=st.integers(0, MAX_GROUP_ID),
    src=st.integers(0, 999),
    dst=st.integers(0, 999),
    body=st.one_of(st.none(), st.text(max_size=32), st.binary(max_size=32)),
)
def test_any_group_round_trips(group, src, dst, body):
    codec = WireCodec()
    msg = Message(sender=src, mid=(src, 3), body=body, body_size=8)
    got = codec.decode_datagram(codec.encode(src, dst, msg, group=group))
    assert got[:3] == (group, src, dst)
    assert got[3].body == body


@settings(max_examples=50, deadline=None)
@given(group=st.integers(1, MAX_GROUP_ID))
def test_pickle_fallback_survives_group_framing(group):
    # Sets have no TLV tag, so the payload takes the pickle-fallback
    # path; the group id must still frame and decode around it.
    codec = WireCodec()
    got = codec.decode_datagram(codec.encode(0, 1, {1, 2, 3}, group=group))
    assert got == (group, 0, 1, {1, 2, 3})
    assert codec.stats.get("pickle_fallbacks") == 1
