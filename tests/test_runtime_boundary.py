"""The runtime boundary, enforced.

No module outside ``repro/sim/`` and ``repro/runtime/`` may import the
discrete-event engine (``Simulator`` / ``EventHandle`` / the
``repro.sim.engine`` module) directly — everything else talks to the
:mod:`repro.runtime` interface, which is what lets the same stacks run
on simulated or real time.  Monitors and RNG streams
(``repro.sim.monitor``, ``repro.sim.rng``) are plain data helpers with
no clock and stay importable from anywhere.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Packages that legitimately touch the engine.
ALLOWED_PREFIXES = ("sim", "runtime")

#: The modules whose direct import is restricted.
ENGINE_MODULES = {"repro.sim.engine"}
ENGINE_NAMES = {"Simulator", "EventHandle"}


def _is_allowed(path: Path) -> bool:
    rel = path.relative_to(SRC)
    return rel.parts and rel.parts[0] in ALLOWED_PREFIXES


def _engine_imports(path: Path):
    """Yield (lineno, description) for every engine import in a file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    # Resolve "from ..sim.engine import X" style relative imports.
    package_parts = ("repro",) + path.relative_to(SRC).parts[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in ENGINE_MODULES or alias.name.startswith(
                    "repro.sim.engine"
                ):
                    yield node.lineno, f"import {alias.name}"
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import
                base = package_parts[: len(package_parts) - node.level + 1]
                module = ".".join(base + tuple((node.module or "").split(".")))
            else:
                module = node.module or ""
            if module in ENGINE_MODULES:
                yield node.lineno, f"from {module} import ..."
            elif module in ("repro.sim", "repro"):
                # Importing engine names through a package facade is the
                # same violation wearing a hat.
                for alias in node.names:
                    if alias.name in ENGINE_NAMES and module == "repro.sim":
                        yield node.lineno, f"from {module} import {alias.name}"


def test_only_sim_and_runtime_import_the_engine():
    violations = []
    for path in sorted(SRC.rglob("*.py")):
        if _is_allowed(path):
            continue
        for lineno, what in _engine_imports(path):
            rel = path.relative_to(SRC.parent)
            violations.append(f"{rel}:{lineno}: {what}")
    assert not violations, (
        "the engine leaked past the runtime boundary:\n  "
        + "\n  ".join(violations)
        + "\n(import from repro.runtime instead)"
    )


def test_the_scan_itself_sees_engine_imports():
    # Guard the guard: the allowed packages do import the engine, so an
    # empty scan there would mean the detector is broken.
    runtime_pkg = SRC / "runtime"
    hits = [
        hit
        for path in runtime_pkg.rglob("*.py")
        for hit in _engine_imports(path)
    ]
    assert hits, "detector found no engine imports even in repro/runtime/"


def test_no_production_module_imports_the_heap_reference():
    """``repro.sim._heapref`` is the frozen pre-wheel engine, kept only
    for differential tests and uplift benchmarks.  A production import
    would silently run the old engine; nothing in src/ may touch it —
    not even the packages allowed to import the live engine."""
    violations = []
    for path in sorted(SRC.rglob("*.py")):
        if path.name == "_heapref.py":
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        package_parts = ("repro",) + path.relative_to(SRC).parts[:-1]
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if "_heapref" in alias.name:
                        violations.append(f"{path}:{node.lineno}")
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = package_parts[: len(package_parts) - node.level + 1]
                    module = ".".join(
                        base + tuple((node.module or "").split("."))
                    )
                else:
                    module = node.module or ""
                if "_heapref" in module or any(
                    alias.name == "_heapref" for alias in node.names
                ):
                    violations.append(f"{path}:{node.lineno}")
    assert not violations, (
        "the frozen heap reference leaked into production code:\n  "
        + "\n  ".join(violations)
    )
