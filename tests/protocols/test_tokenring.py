"""Unit tests for token-ring total order."""

import pytest

from helpers import ptp_group
from repro.errors import ProtocolError
from repro.net.faults import FaultPlan
from repro.protocols.reliable import ReliableLayer
from repro.protocols.tokenring import TokenRingLayer


def test_total_order_across_senders():
    sim, stacks, log = ptp_group(4, lambda r: [TokenRingLayer()])
    for i in range(12):
        stacks[i % 4].cast(f"t{i}", 10)
    sim.run_until(1.0)
    assert log.all_agree()
    assert len(log.bodies(0)) == 12


def test_sender_waits_for_token():
    """A cast is queued until the token arrives; nothing is multicast
    before the first token reaches the sender."""
    sim, stacks, log = ptp_group(4, lambda r: [TokenRingLayer()])
    stacks[2].cast("queued", 10)
    layer = stacks[2].find_layer(TokenRingLayer)
    assert layer.queued == 1
    sim.run_until(1.0)
    assert layer.queued == 0
    assert log.bodies(2) == ["queued"]


def test_max_burst_limits_per_hold():
    sim, stacks, log = ptp_group(3, lambda r: [TokenRingLayer(max_burst=1)])
    for i in range(4):
        stacks[1].cast(i, 10)
    sim.run_until(1.0)
    assert log.bodies(1) == [0, 1, 2, 3]
    layer = stacks[1].find_layer(TokenRingLayer)
    # Four messages over at least four separate holds.
    assert layer.stats.get("multicasts") == 4


def test_token_keeps_circulating_when_idle():
    sim, stacks, log = ptp_group(3, lambda r: [TokenRingLayer()])
    sim.run_until(0.3)
    holds = stacks[0].find_layer(TokenRingLayer).stats.get("holds")
    assert holds > 10  # many rotations with no data


def test_own_delivery_in_global_order():
    sim, stacks, log = ptp_group(3, lambda r: [TokenRingLayer()])
    stacks[0].cast("a", 10)
    stacks[1].cast("b", 10)
    stacks[2].cast("c", 10)
    sim.run_until(1.0)
    assert log.all_agree()
    assert sorted(log.bodies(0)) == ["a", "b", "c"]


def test_validation():
    with pytest.raises(ProtocolError):
        TokenRingLayer(max_burst=0)
    with pytest.raises(ProtocolError):
        TokenRingLayer(hold_cost=-1)


def test_singleton_group():
    sim, stacks, log = ptp_group(1, lambda r: [TokenRingLayer()])
    stacks[0].cast("solo", 10)
    sim.run_until(0.05)
    assert log.bodies(0) == ["solo"]


def test_token_loss_recovered_over_reliable_layer():
    """Composed above the reliable layer, a lost token is retransmitted
    by the NAK machinery — total order survives loss."""
    sim, stacks, log = ptp_group(
        3,
        lambda r: [TokenRingLayer(), ReliableLayer()],
        faults=FaultPlan(loss_rate=0.25),
        seed=12,
    )
    for i in range(10):
        stacks[i % 3].cast(i, 10)
    sim.run_until(10.0)
    assert log.all_agree()
    assert len(log.bodies(0)) == 10


def test_watchdog_regenerates_token_on_bare_stack():
    """With total token loss and no reliable layer, the coordinator's
    watchdog regenerates the token after the timeout."""
    from repro.net.faults import Partition

    # Black out all communication briefly so the in-flight token dies.
    plan = FaultPlan(
        partitions=[Partition.split(0.010, 0.012, [0], [1], [2])]
    )
    sim, stacks, log = ptp_group(
        3,
        lambda r: [TokenRingLayer(watchdog_timeout=0.05)],
        faults=plan,
        seed=13,
    )
    sim.run_until(0.5)
    stacks[0].cast("after-regen", 10)
    sim.run_until(1.0)
    assert log.bodies(0) == ["after-regen"]
    regens = stacks[0].find_layer(TokenRingLayer).stats.get("regenerations")
    assert regens >= 1
