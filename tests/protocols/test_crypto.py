"""Unit tests for the toy crypto primitives."""

import pytest

from repro.errors import ProtocolError
from repro.protocols.crypto import Ciphertext, GroupKey, compute_mac, verify_mac


class TestGroupKey:
    def test_same_secret_same_key(self):
        assert GroupKey("s") == GroupKey("s")
        assert GroupKey("s").key_id == GroupKey("s").key_id

    def test_different_secret_different_key(self):
        assert GroupKey("a") != GroupKey("b")

    def test_repr_hides_secret(self):
        assert "topsecret" not in repr(GroupKey("topsecret"))


class TestMac:
    def test_roundtrip(self):
        key = GroupKey("k")
        tag = compute_mac(key, (0, 1), "body")
        assert verify_mac(key, tag, (0, 1), "body")

    def test_wrong_key_fails(self):
        tag = compute_mac(GroupKey("k1"), "data")
        assert not verify_mac(GroupKey("k2"), tag, "data")

    def test_tampered_fields_fail(self):
        key = GroupKey("k")
        tag = compute_mac(key, "original")
        assert not verify_mac(key, tag, "tampered")

    def test_missing_tag_fails(self):
        assert not verify_mac(GroupKey("k"), None, "data")

    def test_field_order_matters(self):
        key = GroupKey("k")
        assert compute_mac(key, "a", "b") != compute_mac(key, "b", "a")


class TestCiphertext:
    def test_decrypt_with_right_key(self):
        key = GroupKey("k")
        sealed = Ciphertext(key, {"secret": 1})
        assert sealed.decrypt(key) == {"secret": 1}

    def test_wrong_key_rejected(self):
        sealed = Ciphertext(GroupKey("k1"), "plain")
        with pytest.raises(ProtocolError):
            sealed.decrypt(GroupKey("k2"))

    def test_can_decrypt(self):
        key = GroupKey("k")
        sealed = Ciphertext(key, "plain")
        assert sealed.can_decrypt(key)
        assert not sealed.can_decrypt(GroupKey("other"))
        assert not sealed.can_decrypt(None)

    def test_repr_reveals_nothing(self):
        sealed = Ciphertext(GroupKey("k"), "the-plaintext")
        assert "the-plaintext" not in repr(sealed)
