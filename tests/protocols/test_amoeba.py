"""Unit tests for the Amoeba send-blocking layer."""

from helpers import ptp_group
from repro.protocols.amoeba import AmoebaLayer
from repro.protocols.tokenring import TokenRingLayer


def test_single_send_flows():
    sim, stacks, log = ptp_group(3, lambda r: [AmoebaLayer()])
    stacks[0].cast("m", 10)
    sim.run()
    for rank in range(3):
        assert log.bodies(rank) == ["m"]


def test_can_send_false_while_awaiting_own():
    sim, stacks, log = ptp_group(3, lambda r: [AmoebaLayer()])
    stacks[0].cast("m", 10)
    assert not stacks[0].can_send()
    sim.run()
    assert stacks[0].can_send()


def test_second_send_queued_until_first_returns():
    sim, stacks, log = ptp_group(3, lambda r: [AmoebaLayer()])
    stacks[0].cast("first", 10)
    stacks[0].cast("second", 10)
    layer = stacks[0].find_layer(AmoebaLayer)
    assert layer.blocked_count == 1
    sim.run()
    assert layer.blocked_count == 0
    assert log.bodies(1) == ["first", "second"]


def test_queue_drains_in_order():
    sim, stacks, log = ptp_group(2, lambda r: [AmoebaLayer()])
    for i in range(5):
        stacks[0].cast(i, 10)
    sim.run()
    assert log.bodies(1) == [0, 1, 2, 3, 4]


def test_other_processes_unaffected():
    sim, stacks, log = ptp_group(3, lambda r: [AmoebaLayer()])
    stacks[0].cast("a", 10)
    assert stacks[1].can_send()  # only the sender is blocked
    stacks[1].cast("b", 10)
    sim.run()
    assert sorted(log.bodies(2)) == ["a", "b"]


def test_composes_with_total_order():
    """Above the token ring: the wait for our own message spans most of
    a token rotation, and sends stay serialized."""
    sim, stacks, log = ptp_group(
        3, lambda r: [AmoebaLayer(), TokenRingLayer()]
    )
    stacks[1].cast("x", 10)
    stacks[1].cast("y", 10)
    sim.run_until(1.0)
    assert log.all_agree()
    assert log.bodies(1) == ["x", "y"]


def test_deliveries_pass_through_while_blocked():
    sim, stacks, log = ptp_group(2, lambda r: [AmoebaLayer()])
    stacks[0].cast("blocker", 10)
    stacks[1].cast("other", 10)
    sim.run()
    assert sorted(log.bodies(0)) == ["blocker", "other"]
