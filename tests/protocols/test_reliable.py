"""Unit tests for the reliable multicast layer."""

import pytest

from helpers import ptp_group
from repro.errors import ProtocolError
from repro.net.faults import FaultPlan
from repro.protocols.reliable import ReliableConfig, ReliableLayer


def reliable_group(n, faults=None, seed=1, config=None):
    return ptp_group(
        n, lambda r: [ReliableLayer(config)], faults=faults, seed=seed
    )


def test_lossless_delivery():
    sim, stacks, log = reliable_group(3)
    for i in range(5):
        stacks[i % 3].cast(i, 10)
    sim.run_until(0.5)
    for rank in range(3):
        assert sorted(log.bodies(rank)) == list(range(5))


def test_recovers_from_heavy_loss():
    sim, stacks, log = reliable_group(
        3, faults=FaultPlan(loss_rate=0.35), seed=2
    )
    for i in range(30):
        stacks[i % 3].cast(i, 10)
    sim.run_until(5.0)
    for rank in range(3):
        assert sorted(log.bodies(rank)) == list(range(30))


def test_exactly_once_under_duplication():
    sim, stacks, log = reliable_group(
        3, faults=FaultPlan(duplicate_rate=0.5), seed=3
    )
    for i in range(20):
        stacks[0].cast(i, 10)
    sim.run_until(2.0)
    for rank in range(3):
        assert log.bodies(rank) == list(range(20))  # once each, in order


def test_per_stream_fifo_under_reordering():
    sim, stacks, log = reliable_group(
        3, faults=FaultPlan(reorder_jitter=5e-3), seed=4
    )
    for i in range(15):
        stacks[1].cast(i, 10)
    sim.run_until(2.0)
    for rank in range(3):
        assert log.bodies(rank) == list(range(15))


def test_combined_faults():
    sim, stacks, log = reliable_group(
        4,
        faults=FaultPlan(loss_rate=0.2, duplicate_rate=0.2, reorder_jitter=3e-3),
        seed=5,
    )
    for i in range(40):
        stacks[i % 4].cast(i, 10)
    sim.run_until(6.0)
    for rank in range(4):
        assert sorted(log.bodies(rank)) == list(range(40))


def test_last_message_loss_recovered_by_heartbeat():
    """The classic NAK weakness: nothing after the lost tail to reveal
    the gap — heartbeats close it."""
    sim, stacks, log = reliable_group(
        2, faults=FaultPlan(loss_rate=0.8), seed=6
    )
    stacks[0].cast("tail", 10)
    sim.run_until(20.0)
    assert log.bodies(1) == ["tail"]


def test_stability_garbage_collection():
    sim, stacks, log = reliable_group(3)
    for i in range(10):
        stacks[0].cast(i, 10)
    sim.run_until(2.0)
    layer = stacks[0].find_layer(ReliableLayer)
    assert layer.unstable_messages == 0  # everything acknowledged


def test_buffer_retained_until_all_ack():
    sim, stacks, log = reliable_group(
        3, faults=FaultPlan(loss_rate=0.4), seed=7
    )
    for i in range(5):
        stacks[0].cast(i, 10)
    sim.run_until(0.01)  # before ACK timers fire
    assert stacks[0].find_layer(ReliableLayer).unstable_messages > 0


def test_unicast_streams_are_reliable_too():
    sim, stacks, log = reliable_group(
        3, faults=FaultPlan(loss_rate=0.3), seed=8
    )
    for i in range(10):
        msg = stacks[0].ctx.make_message(i, 10, dest=(2,))
        stacks[0].find_layer(ReliableLayer).send(msg)
    sim.run_until(3.0)
    assert log.bodies(2) == list(range(10))
    assert log.bodies(1) == []


def test_self_delivery_included():
    sim, stacks, log = reliable_group(3)
    stacks[1].cast("mine", 10)
    sim.run_until(0.5)
    assert log.bodies(1) == ["mine"]


def test_config_validation():
    with pytest.raises(ProtocolError):
        ReliableConfig(tick_interval=0)
    with pytest.raises(ProtocolError):
        ReliableConfig(nak_batch=0)


def test_retransmit_counters():
    sim, stacks, log = reliable_group(
        2, faults=FaultPlan(loss_rate=0.5), seed=9
    )
    for i in range(20):
        stacks[0].cast(i, 10)
    sim.run_until(5.0)
    assert log.bodies(1) == list(range(20))
    sender = stacks[0].find_layer(ReliableLayer)
    receiver = stacks[1].find_layer(ReliableLayer)
    assert sender.stats.get("retransmits") > 0
    assert receiver.stats.get("naks_sent") > 0


def test_holdback_drains():
    sim, stacks, log = reliable_group(
        3, faults=FaultPlan(loss_rate=0.3), seed=10
    )
    for i in range(20):
        stacks[0].cast(i, 10)
    sim.run_until(5.0)
    for rank in range(3):
        assert stacks[rank].find_layer(ReliableLayer).holdback_size == 0
