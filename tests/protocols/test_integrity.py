"""Unit tests for the integrity (MAC) layer."""

from helpers import ptp_group
from repro.protocols.crypto import GroupKey
from repro.protocols.integrity import IntegrityLayer

KEY = GroupKey("test-key")


def test_trusted_traffic_flows():
    sim, stacks, log = ptp_group(3, lambda r: [IntegrityLayer(KEY)])
    stacks[0].cast("signed", 10)
    sim.run()
    for rank in range(3):
        assert log.bodies(rank) == ["signed"]


def test_keyless_sender_rejected_by_trusted_receivers():
    def factory(rank):
        return [IntegrityLayer(KEY if rank != 2 else None)]

    sim, stacks, log = ptp_group(3, factory)
    stacks[2].cast("unsigned", 10)
    sim.run()
    assert log.bodies(0) == []
    assert log.bodies(1) == []
    assert stacks[0].find_layer(IntegrityLayer).stats.get("rejected") == 1


def test_forged_tag_rejected():
    sim, stacks, log = ptp_group(2, lambda r: [IntegrityLayer(KEY)])
    forged = (
        stacks[0]
        .ctx.make_message("forged", 10, dest=(1,))
        .with_header("mac", "bogus-tag", 32)
    )
    stacks[0].transport.send(forged)
    sim.run()
    assert log.bodies(1) == []


def test_deliver_unverified_mode():
    def factory(rank):
        return [IntegrityLayer(None, deliver_unverified=True)]

    sim, stacks, log = ptp_group(2, factory)
    stacks[0].cast("untagged", 10)
    sim.run()
    assert log.bodies(1) == ["untagged"]


def test_tag_covers_body():
    """A message whose body was altered in flight fails verification."""
    sim, stacks, log = ptp_group(2, lambda r: [IntegrityLayer(KEY)])
    layer = stacks[0].find_layer(IntegrityLayer)
    msg = stacks[0].ctx.make_message("original", 10, dest=(1,))
    # Capture what the layer would transmit, then tamper with the body.
    captured = []
    layer._down = captured.append
    layer.send(msg)
    tampered = captured[0].with_body("tampered")
    stacks[0].transport.send(tampered)
    sim.run()
    assert log.bodies(1) == []


def test_wrong_group_key_rejected():
    def factory(rank):
        return [IntegrityLayer(KEY if rank == 0 else GroupKey("other"))]

    sim, stacks, log = ptp_group(2, factory)
    stacks[0].cast("cross-group", 10)
    sim.run()
    assert log.bodies(1) == []


def test_passthrough_without_header():
    sim, stacks, log = ptp_group(2, lambda r: [IntegrityLayer(KEY)])
    msg = stacks[0].ctx.make_message("bare", 10, dest=(1,))
    stacks[0].transport.send(msg)
    sim.run()
    assert log.bodies(1) == ["bare"]
