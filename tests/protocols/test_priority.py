"""Unit tests for prioritized (master-first) delivery."""

import pytest

from helpers import ptp_group
from repro.errors import ProtocolError
from repro.net.ptp import LatencyMatrix
from repro.protocols.priority import PrioritizedDeliveryLayer
from repro.sim.engine import Simulator


def timed_group(n=3, master=0, latency=None):
    sim_holder = {}

    def factory(rank):
        return [PrioritizedDeliveryLayer(master)]

    sim, stacks, log = ptp_group(n, factory, latency=latency)
    times = {r: [] for r in range(n)}
    for rank, stack in stacks.items():
        stack.on_deliver(
            lambda m, rank=rank: times[rank].append((m.mid, sim.now))
        )
    return sim, stacks, log, times


def test_all_deliver():
    sim, stacks, log, times = timed_group()
    stacks[1].cast("m", 10)
    sim.run()
    for rank in range(3):
        assert log.bodies(rank) == ["m"]


def test_master_always_first_in_time():
    # Master is *far* from the sender; priority must still hold.
    latency = LatencyMatrix(3, base_latency=1e-3)
    latency.set(1, 0, 20e-3)  # sender -> master slow
    sim, stacks, log, times = timed_group(latency=latency)
    stacks[1].cast("m", 10)
    sim.run()
    master_time = times[0][0][1]
    for rank in (1, 2):
        assert times[rank][0][1] > master_time


def test_master_delivers_unconditionally():
    sim, stacks, log, times = timed_group()
    stacks[0].cast("from-master", 10)
    sim.run()
    assert log.bodies(0) == ["from-master"]


def test_release_before_data_race():
    """If the RELEASE overtakes the data (reordering), delivery still
    happens exactly once when the data arrives."""
    latency = LatencyMatrix(3, base_latency=1e-3)
    latency.set(1, 2, 30e-3)  # data to rank 2 is very slow
    sim, stacks, log, times = timed_group(latency=latency)
    stacks[1].cast("m", 10)
    sim.run()
    assert log.bodies(2) == ["m"]
    layer = stacks[2].find_layer(PrioritizedDeliveryLayer)
    assert layer.waiting_count == 0


def test_multiple_messages_all_master_first():
    sim, stacks, log, times = timed_group()
    for i in range(5):
        stacks[(i % 2) + 1].cast(i, 10)
    sim.run()
    master_times = dict(times[0])
    for rank in (1, 2):
        for mid, when in times[rank]:
            assert when > master_times[mid]


def test_unicast_passes_through_ungated():
    sim, stacks, log, times = timed_group()
    layer = stacks[0].find_layer(PrioritizedDeliveryLayer)
    msg = stacks[0].ctx.make_message("u", 10, dest=(1,))
    layer.send(msg)
    sim.run()
    assert log.bodies(1) == ["u"]
    assert layer.stats.get("passthrough") == 1


def test_default_master_is_coordinator():
    sim, stacks, log = ptp_group(3, lambda r: [PrioritizedDeliveryLayer()])
    assert stacks[1].find_layer(PrioritizedDeliveryLayer).master == 0
