"""Unit tests for the virtual-synchrony layer."""

import pytest

from helpers import ptp_group
from repro.errors import ProtocolError
from repro.protocols.virtual_synchrony import (
    VirtualSynchronyLayer,
    view_message_mid,
)
from repro.stack.membership import View


def vs_group(n=3, announce="start", namespace=0):
    return ptp_group(
        n,
        lambda r: [VirtualSynchronyLayer(announce=announce, namespace=namespace)],
    )


def views_in(log, rank):
    return [b for b in log.bodies(rank) if isinstance(b, View)]


def data_in(log, rank):
    return [b for b in log.bodies(rank) if not isinstance(b, View)]


def test_initial_view_delivered_at_start():
    sim, stacks, log = vs_group()
    sim.run()
    for rank in range(3):
        assert views_in(log, rank) == [View(0, (0, 1, 2))]


def test_view_mid_is_shared_across_members():
    sim, stacks, log = vs_group()
    sim.run()
    mids = {log.mids(rank)[0] for rank in range(3)}
    assert len(mids) == 1
    assert mids.pop() == view_message_mid(View(0, (0, 1, 2)))


def test_data_flows_within_view():
    sim, stacks, log = vs_group()
    stacks[1].cast("d", 10)
    sim.run()
    for rank in range(3):
        assert data_in(log, rank) == ["d"]


def test_view_precedes_data_everywhere():
    sim, stacks, log = vs_group(announce="first_activity")
    stacks[1].cast("d", 10)
    sim.run()
    for rank in range(3):
        bodies = log.bodies(rank)
        assert isinstance(bodies[0], View)
        assert bodies[1] == "d"


def test_announce_never_suppresses_views():
    sim, stacks, log = vs_group(announce="never")
    stacks[1].cast("d", 10)
    sim.run()
    for rank in range(3):
        assert views_in(log, rank) == []
        assert data_in(log, rank) == ["d"]


def test_lazy_announce_quiet_without_activity():
    sim, stacks, log = vs_group(announce="first_activity")
    sim.run()
    for rank in range(3):
        assert log.bodies(rank) == []


def test_view_change_installs_new_view():
    sim, stacks, log = vs_group()
    sim.run_until(0.01)
    layer = stacks[0].find_layer(VirtualSynchronyLayer)
    layer.propose_view([0, 1, 2])
    sim.run_until(0.2)
    for rank in range(3):
        assert [v.view_id for v in views_in(log, rank)] == [0, 1]


def test_view_change_flushes_in_flight_data():
    sim, stacks, log = vs_group()
    stacks[2].cast("inflight", 10)
    layer = stacks[0].find_layer(VirtualSynchronyLayer)
    sim.run_until(0.0005)  # data still in the air
    layer.propose_view([0, 1, 2])
    sim.run_until(0.5)
    for rank in range(3):
        bodies = log.bodies(rank)
        data_index = bodies.index("inflight")
        view1_index = next(
            i for i, b in enumerate(bodies)
            if isinstance(b, View) and b.view_id == 1
        )
        assert data_index < view1_index  # delivered in its sending view


def test_sends_queued_during_flush_go_to_new_view():
    sim, stacks, log = vs_group()
    coordinator = stacks[0].find_layer(VirtualSynchronyLayer)
    sim.run_until(0.01)
    coordinator.propose_view([0, 1, 2])
    sim.run_until(0.0105)  # flush under way at rank 0
    assert not stacks[0].can_send()
    stacks[0].cast("queued", 10)
    sim.run_until(0.5)
    for rank in range(3):
        bodies = log.bodies(rank)
        view1_index = next(
            i for i, b in enumerate(bodies)
            if isinstance(b, View) and b.view_id == 1
        )
        assert bodies.index("queued") > view1_index


def test_member_removal():
    sim, stacks, log = vs_group()
    sim.run_until(0.01)
    stacks[0].find_layer(VirtualSynchronyLayer).propose_view([0, 1])
    sim.run_until(0.2)
    stacks[0].cast("post", 10)
    sim.run_until(0.5)
    assert "post" in log.bodies(1)
    assert "post" not in log.bodies(2)  # excluded member sees nothing


def test_excluded_member_cannot_send():
    sim, stacks, log = vs_group()
    sim.run_until(0.01)
    stacks[0].find_layer(VirtualSynchronyLayer).propose_view([0, 1])
    sim.run_until(0.2)
    with pytest.raises(ProtocolError):
        stacks[2].cast("zombie", 10)


def test_only_coordinator_may_propose():
    sim, stacks, log = vs_group()
    sim.run_until(0.01)
    with pytest.raises(ProtocolError):
        stacks[1].find_layer(VirtualSynchronyLayer).propose_view([0, 1, 2])


def test_concurrent_proposals_rejected():
    sim, stacks, log = vs_group()
    sim.run_until(0.01)
    layer = stacks[0].find_layer(VirtualSynchronyLayer)
    layer.propose_view([0, 1, 2])
    with pytest.raises(ProtocolError):
        layer.propose_view([0, 1])


def test_invalid_announce_mode_rejected():
    with pytest.raises(ProtocolError):
        VirtualSynchronyLayer(announce="sometimes")


def test_back_to_back_view_changes():
    sim, stacks, log = vs_group()
    layer = stacks[0].find_layer(VirtualSynchronyLayer)
    sim.run_until(0.01)
    layer.propose_view([0, 1, 2])
    sim.run_until(0.3)
    layer.propose_view([0, 1, 2])
    sim.run_until(0.6)
    for rank in range(3):
        assert [v.view_id for v in views_in(log, rank)] == [0, 1, 2]
