"""Property-based tests: the reliable layer's exactly-once/FIFO contract
over randomized fault plans — the §2 assumptions the SP rests on."""

import hypothesis.strategies as st
from hypothesis import given, settings

from helpers import ptp_group
from repro.net.faults import FaultPlan
from repro.protocols.reliable import ReliableLayer


@st.composite
def fault_scenario(draw):
    return {
        "seed": draw(st.integers(0, 100_000)),
        "loss": draw(st.floats(0.0, 0.45)),
        "dup": draw(st.floats(0.0, 0.3)),
        "jitter": draw(st.sampled_from([0.0, 1e-3, 5e-3])),
        "group": draw(st.integers(2, 4)),
        "messages": draw(st.integers(1, 15)),
    }


@given(fault_scenario())
@settings(max_examples=20, deadline=None)
def test_exactly_once_fifo_under_random_faults(params):
    faults = FaultPlan(
        loss_rate=params["loss"],
        duplicate_rate=params["dup"],
        reorder_jitter=params["jitter"],
    )
    sim, stacks, log = ptp_group(
        params["group"],
        lambda r: [ReliableLayer()],
        faults=faults,
        seed=params["seed"],
    )
    n = params["group"]
    for i in range(params["messages"]):
        sim.schedule_at(0.002 * (i + 1), lambda i=i: stacks[i % n].cast((i % n, i), 16))
    sim.run_until(60.0)

    expected = [(i % n, i) for i in range(params["messages"])]
    for rank in range(n):
        bodies = log.bodies(rank)
        # Exactly once: no losses, no duplicates.
        assert sorted(bodies) == sorted(expected), (rank, bodies)
        # Per-sender FIFO.
        for sender in range(n):
            stream = [i for (s, i) in bodies if s == sender]
            assert stream == sorted(stream)

    # Stability: with everything acknowledged, buffers drain.
    for rank in range(n):
        layer = stacks[rank].find_layer(ReliableLayer)
        assert layer.holdback_size == 0
