"""Unit tests for the delay layer, and the §4 claim it demonstrates:
layering delay alone (no switching) can violate properties."""

import pytest

from helpers import ptp_group
from repro.errors import ProtocolError
from repro.protocols.delay import DelayLayer
from repro.protocols.priority import PrioritizedDeliveryLayer
from repro.traces.properties import PrioritizedDelivery
from repro.traces.recorder import TraceRecorder


def test_send_delay_postpones_transmission():
    sim, stacks, log = ptp_group(2, lambda r: [DelayLayer(send_delay=0.05)])
    times = []
    stacks[1].on_deliver(lambda m: times.append(sim.now))
    stacks[0].cast("m", 16)
    sim.run()
    assert times[0] >= 0.05


def test_deliver_delay_postpones_upcall():
    sim, stacks, log = ptp_group(2, lambda r: [DelayLayer(deliver_delay=0.05)])
    times = []
    stacks[1].on_deliver(lambda m: times.append(sim.now))
    stacks[0].cast("m", 16)
    sim.run()
    assert times[0] >= 0.05


def test_fifo_within_direction():
    sim, stacks, log = ptp_group(
        2, lambda r: [DelayLayer(deliver_delay=0.01, jitter=0.02)]
    )
    for i in range(20):
        stacks[0].cast(i, 16)
    sim.run()
    assert log.bodies(1) == list(range(20))


def test_zero_delay_is_transparent():
    sim, stacks, log = ptp_group(2, lambda r: [DelayLayer()])
    stacks[0].cast("m", 16)
    sim.run()
    assert log.bodies(1) == ["m"]
    layer = stacks[0].find_layer(DelayLayer)
    assert layer.stats.get("sends_delayed") == 0


def test_negative_delay_rejected():
    with pytest.raises(ProtocolError):
        DelayLayer(send_delay=-1)


def test_layer_delay_alone_breaks_prioritized_delivery():
    """§4: 'several of the difficulties with the composition are not
    because of switching, but because of delays incurred by layering.'

    Prioritized Delivery is not Asynchronous; per-process delivery delay
    above the priority protocol destroys the master-first ordering with
    no switch anywhere in sight."""

    def build(with_delay):
        def factory(rank):
            layers = []
            if with_delay and rank == 0:  # delay only the master's upcalls
                layers.append(DelayLayer(deliver_delay=0.05))
            layers.append(PrioritizedDeliveryLayer(master=0))
            return layers

        sim, stacks, log = ptp_group(3, factory)
        recorder = TraceRecorder(sim)
        recorder.attach_all(stacks)
        stacks[1].cast("m", 16)
        sim.run()
        return PrioritizedDelivery(master=0).holds(recorder.trace())

    assert build(with_delay=False) is True
    assert build(with_delay=True) is False
