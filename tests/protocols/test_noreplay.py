"""Unit tests for the no-replay layer."""

from helpers import ptp_group
from repro.net.faults import FaultPlan
from repro.protocols.noreplay import NoReplayLayer, body_digest


def test_distinct_bodies_flow():
    sim, stacks, log = ptp_group(2, lambda r: [NoReplayLayer()])
    stacks[0].cast("a", 10)
    stacks[0].cast("b", 10)
    sim.run()
    assert log.bodies(1) == ["a", "b"]


def test_same_body_suppressed():
    """Two *different messages* with the same body: only the first is
    delivered — this is the property's whole point (bodies, not ids)."""
    sim, stacks, log = ptp_group(2, lambda r: [NoReplayLayer()])
    stacks[0].cast("dup", 10)
    stacks[1].cast("dup", 10)  # different sender, same body
    sim.run()
    for rank in range(2):
        assert log.bodies(rank) == ["dup"]
        layer = stacks[rank].find_layer(NoReplayLayer)
        assert layer.stats.get("replays_suppressed") == 1


def test_network_duplicates_suppressed():
    sim, stacks, log = ptp_group(
        2, lambda r: [NoReplayLayer()], faults=FaultPlan(duplicate_rate=0.99)
    )
    stacks[0].cast("once", 10)
    sim.run()
    assert log.bodies(1) == ["once"]


def test_suppression_is_per_process():
    sim, stacks, log = ptp_group(3, lambda r: [NoReplayLayer()])
    stacks[0].cast("x", 10)
    sim.run()
    # Every process delivered it once; each cache is independent.
    for rank in range(3):
        assert log.bodies(rank) == ["x"]
        assert stacks[rank].find_layer(NoReplayLayer).seen_count == 1


def test_unhashable_bodies_supported():
    sim, stacks, log = ptp_group(2, lambda r: [NoReplayLayer()])
    stacks[0].cast(["list", "body"], 10)
    stacks[1].cast(["list", "body"], 10)
    sim.run()
    assert log.bodies(0) == [["list", "body"]]


def test_body_digest_hashable_passthrough():
    assert body_digest("s") == "s"
    assert body_digest(42) == 42


def test_body_digest_unhashable_repr():
    assert body_digest([1, 2]) == repr([1, 2])
