"""Unit tests for the FIFO layer."""

from helpers import ptp_group
from repro.net.faults import FaultPlan
from repro.protocols.fifo import FifoLayer


def test_in_order_on_quiet_network():
    sim, stacks, log = ptp_group(3, lambda r: [FifoLayer()])
    for i in range(5):
        stacks[0].cast(f"m{i}", 10)
    sim.run()
    for rank in range(3):
        assert log.bodies(rank) == [f"m{i}" for i in range(5)]


def test_reordering_repaired():
    sim, stacks, log = ptp_group(
        3, lambda r: [FifoLayer()], faults=FaultPlan(reorder_jitter=5e-3), seed=3
    )
    for i in range(20):
        stacks[0].cast(i, 10)
    sim.run()
    for rank in range(3):
        assert log.bodies(rank) == list(range(20))


def test_per_sender_streams_are_independent():
    sim, stacks, log = ptp_group(
        3, lambda r: [FifoLayer()], faults=FaultPlan(reorder_jitter=5e-3), seed=4
    )
    for i in range(10):
        stacks[0].cast(("a", i), 10)
        stacks[1].cast(("b", i), 10)
    sim.run()
    for rank in range(3):
        a_stream = [b for b in log.bodies(rank) if b[0] == "a"]
        b_stream = [b for b in log.bodies(rank) if b[0] == "b"]
        assert a_stream == [("a", i) for i in range(10)]
        assert b_stream == [("b", i) for i in range(10)]


def test_duplicates_suppressed():
    sim, stacks, log = ptp_group(
        2, lambda r: [FifoLayer()], faults=FaultPlan(duplicate_rate=0.9), seed=5
    )
    for i in range(10):
        stacks[0].cast(i, 10)
    sim.run()
    assert log.bodies(1) == list(range(10))
    assert stacks[1].find_layer(FifoLayer).stats.get("duplicates") > 0


def test_gap_stalls_holdback():
    """Without a reliability layer a loss stalls the stream (documented)."""
    sim, stacks, log = ptp_group(
        2, lambda r: [FifoLayer()], faults=FaultPlan(loss_rate=0.4), seed=6
    )
    for i in range(20):
        stacks[0].cast(i, 10)
    sim.run()
    delivered = log.bodies(1)
    # Whatever was delivered is a gapless prefix, in order.
    assert delivered == list(range(len(delivered)))


def test_foreign_traffic_passes_through():
    """Messages without our header (e.g. control of a lower layer that
    bypassed us) are delivered untouched."""
    sim, stacks, log = ptp_group(2, lambda r: [FifoLayer()])
    msg = stacks[0].ctx.make_message("alien", 10, dest=(1,))
    stacks[0].transport.send(msg)
    sim.run()
    assert log.bodies(1) == ["alien"]
