"""Unit tests for the confidentiality layer."""

from helpers import ptp_group
from repro.protocols.confidentiality import ConfidentialityLayer
from repro.protocols.crypto import Ciphertext, GroupKey

KEY = GroupKey("conf-key")


def test_trusted_to_trusted_flows():
    sim, stacks, log = ptp_group(3, lambda r: [ConfidentialityLayer(KEY)])
    stacks[0].cast("secret", 10)
    sim.run()
    for rank in range(3):
        assert log.bodies(rank) == ["secret"]


def test_bodies_are_sealed_on_the_wire():
    sim, stacks, log = ptp_group(2, lambda r: [ConfidentialityLayer(KEY)])
    wire = []
    layer = stacks[0].find_layer(ConfidentialityLayer)
    original_down = layer._down
    layer._down = lambda m: (wire.append(m), original_down(m))
    stacks[0].cast("secret", 10)
    sim.run()
    assert isinstance(wire[0].body, Ciphertext)
    assert log.bodies(1) == ["secret"]  # receiver still gets plaintext


def test_keyless_receiver_sees_nothing():
    def factory(rank):
        return [ConfidentialityLayer(KEY if rank != 2 else None)]

    sim, stacks, log = ptp_group(3, factory)
    stacks[0].cast("secret", 10)
    sim.run()
    assert log.bodies(1) == ["secret"]
    assert log.bodies(2) == []
    untrusted = stacks[2].find_layer(ConfidentialityLayer)
    assert untrusted.stats.get("undecryptable") == 1


def test_keyless_sender_broadcasts_clear():
    def factory(rank):
        return [ConfidentialityLayer(KEY if rank != 2 else None)]

    sim, stacks, log = ptp_group(3, factory)
    stacks[2].cast("public", 10)
    sim.run()
    assert log.bodies(0) == ["public"]
    assert log.bodies(1) == ["public"]
    assert log.bodies(2) == ["public"]


def test_wrong_key_cannot_decrypt():
    def factory(rank):
        return [ConfidentialityLayer(KEY if rank == 0 else GroupKey("other"))]

    sim, stacks, log = ptp_group(2, factory)
    stacks[0].cast("secret", 10)
    sim.run()
    assert log.bodies(1) == []


def test_size_overhead_accounted():
    sim, stacks, log = ptp_group(2, lambda r: [ConfidentialityLayer(KEY)])
    sizes = []
    layer = stacks[0].find_layer(ConfidentialityLayer)
    original_down = layer._down
    layer._down = lambda m: (sizes.append(m.body_size), original_down(m))
    stacks[0].cast("secret", 100)
    sim.run()
    assert sizes[0] > 100  # framing overhead added


def test_passthrough_without_header():
    sim, stacks, log = ptp_group(2, lambda r: [ConfidentialityLayer(KEY)])
    msg = stacks[0].ctx.make_message("bare", 10, dest=(1,))
    stacks[0].transport.send(msg)
    sim.run()
    assert log.bodies(1) == ["bare"]
