"""Unit tests for sequencer-based total order."""

import pytest

from helpers import ptp_group
from repro.errors import ProtocolError
from repro.net.ethernet import EthernetNetwork, EthernetParams
from repro.protocols.sequencer import SequencerLayer
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.stack.membership import Group
from repro.stack.stack import build_group


def test_total_order_across_senders():
    sim, stacks, log = ptp_group(4, lambda r: [SequencerLayer()])
    for i in range(12):
        stacks[i % 4].cast(f"m{i}", 10)
    sim.run()
    assert log.all_agree()
    assert len(log.bodies(0)) == 12


def test_sender_delivers_own_messages():
    sim, stacks, log = ptp_group(3, lambda r: [SequencerLayer()])
    stacks[2].cast("mine", 10)
    sim.run()
    assert log.bodies(2) == ["mine"]


def test_sequencer_own_casts_are_ordered_with_others():
    sim, stacks, log = ptp_group(3, lambda r: [SequencerLayer()])
    stacks[0].cast("from-sequencer", 10)  # rank 0 is the default sequencer
    stacks[1].cast("from-member", 10)
    sim.run()
    assert log.all_agree()
    assert sorted(log.bodies(0)) == ["from-member", "from-sequencer"]


def test_custom_sequencer_rank():
    sim, stacks, log = ptp_group(3, lambda r: [SequencerLayer(sequencer=2)])
    for i in range(6):
        stacks[i % 3].cast(i, 10)
    sim.run()
    assert log.all_agree()
    layer = stacks[2].find_layer(SequencerLayer)
    assert layer.stats.get("ordered") == 6
    assert stacks[0].find_layer(SequencerLayer).stats.get("ordered") == 0


def test_message_identity_preserved():
    sim, stacks, log = ptp_group(2, lambda r: [SequencerLayer()])
    mid = stacks[1].cast("body", 10)
    sim.run()
    assert log.mids(0) == [mid]
    assert log.mids(1) == [mid]


def test_unicast_passes_through_unordered():
    """Explicit-destination traffic (control of a layer above) is not the
    sequencer's business: it bypasses ordering untouched."""
    sim, stacks, log = ptp_group(2, lambda r: [SequencerLayer()])
    layer = stacks[0].find_layer(SequencerLayer)
    msg = stacks[0].ctx.make_message("u", 10, dest=(1,))
    layer.send(msg)
    sim.run()
    assert log.bodies(1) == ["u"]
    assert layer.stats.get("passthrough") == 1


def test_negative_order_cost_rejected():
    with pytest.raises(ProtocolError):
        SequencerLayer(order_cost=-1.0)


def test_order_cost_serializes_at_sequencer():
    """Ordering work queues on the sequencer's CPU: messages submitted
    together come out spaced by at least the ordering cost."""
    sim = Simulator()
    net = EthernetNetwork(
        sim, 2, EthernetParams(cpu_send=0, cpu_recv=0, propagation=0),
        rng=RandomStreams(0),
    )
    group = Group.of_size(2)
    stacks = build_group(
        sim, net, group, lambda r: [SequencerLayer(order_cost=5e-3)]
    )
    times = []
    stacks[1].on_deliver(lambda m: times.append(sim.now))
    for i in range(3):
        stacks[1].cast(i, 125)
    sim.run()
    assert len(times) == 3
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(gap >= 5e-3 - 1e-9 for gap in gaps)


def test_holdback_repairs_ordered_reordering():
    from repro.net.faults import FaultPlan

    sim, stacks, log = ptp_group(
        3,
        lambda r: [SequencerLayer()],
        faults=FaultPlan(reorder_jitter=4e-3),
        seed=11,
    )
    for i in range(20):
        stacks[i % 3].cast(i, 10)
    sim.run()
    assert log.all_agree()
    assert len(log.bodies(0)) == 20
