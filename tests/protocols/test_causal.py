"""Unit tests for the causal-order layer."""

import pytest

from helpers import ptp_group
from repro.errors import ProtocolError
from repro.net.ptp import LatencyMatrix
from repro.protocols.causal import CausalOrderLayer
from repro.traces.properties import CausalOrder
from repro.traces.recorder import TraceRecorder


def test_all_deliver_everything():
    sim, stacks, log = ptp_group(3, lambda r: [CausalOrderLayer()])
    for i in range(6):
        stacks[i % 3].cast(i, 16)
    sim.run()
    for rank in range(3):
        assert sorted(log.bodies(rank)) == list(range(6))


def test_reply_never_precedes_cause():
    """The classic scenario: rank 2 is close to the replier, far from the
    original sender — without the causal layer it would see the reply
    first."""
    latency = LatencyMatrix(3, base_latency=1e-3)
    latency.set(0, 2, 20e-3)  # question reaches 2 slowly

    def build(layers):
        sim, stacks, log = ptp_group(3, layers, latency=latency)
        # rank 1 replies as soon as it sees the question
        def maybe_reply(m):
            if m.body == "question" and m.sender == 0:
                stacks[1].cast("answer", 16)
        stacks[1].on_deliver(maybe_reply)
        stacks[0].cast("question", 16)
        sim.run()
        return log.bodies(2)

    without = build(lambda r: [])
    assert without == ["answer", "question"]  # the anomaly exists
    with_causal = build(lambda r: [CausalOrderLayer()])
    assert with_causal == ["question", "answer"]  # and the layer fixes it


def test_fifo_per_sender_implied():
    latency = LatencyMatrix(3, base_latency=1e-3)
    sim, stacks, log = ptp_group(3, lambda r: [CausalOrderLayer()], latency=latency)
    for i in range(5):
        stacks[0].cast(i, 16)
    sim.run()
    for rank in range(3):
        assert log.bodies(rank) == [0, 1, 2, 3, 4]


def test_recorded_trace_satisfies_causal_order():
    sim, stacks, log = ptp_group(4, lambda r: [CausalOrderLayer()])
    recorder = TraceRecorder(sim)
    recorder.attach_all(stacks)
    # chains of causally dependent messages
    def chain(rank, depth):
        if depth:
            stacks[rank].cast(f"c{rank}.{depth}", 16)
            sim.schedule(0.003, lambda: chain((rank + 1) % 4, depth - 1))
    chain(0, 8)
    sim.run()
    assert CausalOrder().holds(recorder.trace())


def test_pending_drains():
    sim, stacks, log = ptp_group(3, lambda r: [CausalOrderLayer()])
    for i in range(10):
        stacks[i % 3].cast(i, 16)
    sim.run()
    for rank in range(3):
        assert stacks[rank].find_layer(CausalOrderLayer).pending_count == 0


def test_unicast_passes_through_unstamped():
    sim, stacks, log = ptp_group(2, lambda r: [CausalOrderLayer()])
    layer = stacks[0].find_layer(CausalOrderLayer)
    layer.send(stacks[0].ctx.make_message("u", 8, dest=(1,)))
    sim.run()
    assert log.bodies(1) == ["u"]
    assert layer.stats.get("passthrough") == 1
