"""Composition sweep: stacks of several guarantee layers at once, each
combination checked against all its properties on the recorded trace —
the §3 Lego-block claim, exercised."""

import pytest

from helpers import ptp_group
from repro.net.faults import FaultPlan
from repro.protocols.causal import CausalOrderLayer
from repro.protocols.crypto import GroupKey
from repro.protocols.fifo import FifoLayer
from repro.protocols.integrity import IntegrityLayer
from repro.protocols.noreplay import NoReplayLayer
from repro.protocols.priority import PrioritizedDeliveryLayer
from repro.protocols.reliable import ReliableLayer
from repro.protocols.sequencer import SequencerLayer
from repro.protocols.tokenring import TokenRingLayer
from repro.traces.properties import (
    CausalOrder,
    FifoOrder,
    Integrity,
    NoReplay,
    PrioritizedDelivery,
    Reliability,
    TotalOrder,
)
from repro.traces.recorder import TraceRecorder

KEY = GroupKey("comp")


def run_stack(layer_factory, n=3, faults=None, casts=12, seed=101,
              duration=5.0):
    sim, stacks, log = ptp_group(n, layer_factory, faults=faults, seed=seed)
    recorder = TraceRecorder(sim)
    recorder.attach_all(stacks)
    for i in range(casts):
        sim.schedule_at(0.004 * (i + 1), lambda i=i: stacks[i % n].cast(i, 32))
    sim.run_until(duration)
    return recorder.trace(), stacks, log


def test_total_order_over_reliable_over_loss():
    trace, stacks, log = run_stack(
        lambda r: [SequencerLayer(), ReliableLayer()],
        faults=FaultPlan(loss_rate=0.15),
    )
    assert TotalOrder().holds(trace)
    assert Reliability(receivers={0, 1, 2}).holds(trace)


def test_secure_total_order():
    trace, stacks, log = run_stack(
        lambda r: [SequencerLayer(), IntegrityLayer(KEY)]
    )
    assert TotalOrder().holds(trace)
    assert Integrity(trusted={0, 1, 2}).holds(trace)


def test_noreplay_over_token_order():
    trace, stacks, log = run_stack(
        lambda r: [NoReplayLayer(), TokenRingLayer()]
    )
    assert TotalOrder().holds(trace)
    assert NoReplay().holds(trace)


def test_priority_over_reliable_over_loss():
    trace, stacks, log = run_stack(
        lambda r: [PrioritizedDeliveryLayer(0), ReliableLayer()],
        faults=FaultPlan(loss_rate=0.1),
        duration=8.0,
    )
    assert PrioritizedDelivery(master=0).holds(trace)
    assert Reliability(receivers={0, 1, 2}).holds(trace)


def test_causal_plus_fifo_is_consistent():
    trace, stacks, log = run_stack(
        lambda r: [CausalOrderLayer()]
    )
    assert CausalOrder().holds(trace)
    assert FifoOrder().holds(trace)  # causal implies per-sender FIFO


def test_total_order_implies_agreed_sequences():
    trace, stacks, log = run_stack(lambda r: [TokenRingLayer()])
    assert log.all_agree()
    assert TotalOrder().holds(trace)


def test_kitchen_sink_stack():
    """Four guarantee layers at once, over a faulty network."""
    trace, stacks, log = run_stack(
        lambda r: [
            NoReplayLayer(),
            PrioritizedDeliveryLayer(0),
            SequencerLayer(),
            IntegrityLayer(KEY),
            ReliableLayer(),
        ],
        faults=FaultPlan(loss_rate=0.1, duplicate_rate=0.1),
        duration=10.0,
    )
    assert TotalOrder().holds(trace)
    assert NoReplay().holds(trace)
    assert PrioritizedDelivery(master=0).holds(trace)
    assert Integrity(trusted={0, 1, 2}).holds(trace)
    assert Reliability(receivers={0, 1, 2}).holds(trace)
    assert len(log.bodies(0)) == 12
