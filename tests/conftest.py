"""Pytest configuration: make tests/helpers importable everywhere."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
