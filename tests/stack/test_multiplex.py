"""Unit tests for the MULTIPLEX layer."""

import pytest

from repro.errors import StackError
from repro.stack.multiplex import Multiplexer
from repro.stack.message import Message


def make_msg(body="x"):
    return Message(sender=0, mid=(0, 0), body=body, body_size=10)


def test_downward_tagging():
    wire = []
    mux = Multiplexer(wire.append)
    channel = mux.channel(3)
    channel.send(make_msg())
    assert len(wire) == 1
    assert wire[0].header("mux") == 3


def test_upward_routing():
    mux = Multiplexer(lambda m: None)
    got_a, got_b = [], []
    mux.channel(1).on_deliver(got_a.append)
    mux.channel(2).on_deliver(got_b.append)
    mux.receive(make_msg().with_header("mux", 2, 2))
    assert got_a == []
    assert len(got_b) == 1
    assert not got_b[0].has_header("mux")  # tag popped


def test_round_trip():
    wire = []
    mux = Multiplexer(wire.append)
    received = []
    channel = mux.channel(0)
    channel.on_deliver(received.append)
    channel.send(make_msg("payload"))
    mux.receive(wire[0])
    assert received[0].body == "payload"


def test_channel_is_cached():
    mux = Multiplexer(lambda m: None)
    assert mux.channel(1) is mux.channel(1)


def test_unknown_channel_rejected():
    mux = Multiplexer(lambda m: None)
    mux.channel(1).on_deliver(lambda m: None)
    with pytest.raises(StackError):
        mux.receive(make_msg().with_header("mux", 9, 2))


def test_untagged_message_rejected():
    mux = Multiplexer(lambda m: None)
    with pytest.raises(StackError):
        mux.receive(make_msg())


def test_traffic_before_wiring_rejected():
    mux = Multiplexer(lambda m: None)
    mux.channel(1)
    with pytest.raises(StackError):
        mux.receive(make_msg().with_header("mux", 1, 2))


def test_double_deliver_registration_rejected():
    mux = Multiplexer(lambda m: None)
    channel = mux.channel(1)
    channel.on_deliver(lambda m: None)
    with pytest.raises(StackError):
        channel.on_deliver(lambda m: None)


def test_negative_channel_rejected():
    mux = Multiplexer(lambda m: None)
    with pytest.raises(StackError):
        mux.channel(-1)


def test_stats_track_both_directions():
    wire = []
    mux = Multiplexer(wire.append)
    channel = mux.channel(5)
    channel.on_deliver(lambda m: None)
    channel.send(make_msg())
    mux.receive(wire[0])
    assert mux.stats.get("tx[5]") == 1
    assert mux.stats.get("rx[5]") == 1
