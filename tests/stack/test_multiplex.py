"""Unit tests for the MULTIPLEX layer."""

import pytest

from repro.errors import StackError
from repro.stack.multiplex import Multiplexer
from repro.stack.message import Message


def make_msg(body="x"):
    return Message(sender=0, mid=(0, 0), body=body, body_size=10)


def test_downward_tagging():
    wire = []
    mux = Multiplexer(wire.append)
    channel = mux.channel(3)
    channel.send(make_msg())
    assert len(wire) == 1
    assert wire[0].header("mux") == 3


def test_upward_routing():
    mux = Multiplexer(lambda m: None)
    got_a, got_b = [], []
    mux.channel(1).on_deliver(got_a.append)
    mux.channel(2).on_deliver(got_b.append)
    mux.receive(make_msg().with_header("mux", 2, 2))
    assert got_a == []
    assert len(got_b) == 1
    assert not got_b[0].has_header("mux")  # tag popped


def test_round_trip():
    wire = []
    mux = Multiplexer(wire.append)
    received = []
    channel = mux.channel(0)
    channel.on_deliver(received.append)
    channel.send(make_msg("payload"))
    mux.receive(wire[0])
    assert received[0].body == "payload"


def test_channel_is_cached():
    mux = Multiplexer(lambda m: None)
    assert mux.channel(1) is mux.channel(1)


def test_unknown_channel_rejected():
    mux = Multiplexer(lambda m: None)
    mux.channel(1).on_deliver(lambda m: None)
    with pytest.raises(StackError):
        mux.receive(make_msg().with_header("mux", 9, 2))


def test_untagged_message_rejected():
    mux = Multiplexer(lambda m: None)
    with pytest.raises(StackError):
        mux.receive(make_msg())


def test_traffic_before_wiring_rejected():
    mux = Multiplexer(lambda m: None)
    mux.channel(1)
    with pytest.raises(StackError):
        mux.receive(make_msg().with_header("mux", 1, 2))


def test_double_deliver_registration_rejected():
    mux = Multiplexer(lambda m: None)
    channel = mux.channel(1)
    channel.on_deliver(lambda m: None)
    with pytest.raises(StackError):
        channel.on_deliver(lambda m: None)


def test_negative_channel_rejected():
    mux = Multiplexer(lambda m: None)
    with pytest.raises(StackError):
        mux.channel(-1)


def test_stats_track_both_directions():
    wire = []
    mux = Multiplexer(wire.append)
    channel = mux.channel(5)
    channel.on_deliver(lambda m: None)
    channel.send(make_msg())
    mux.receive(wire[0])
    assert mux.stats.get("tx[5]") == 1
    assert mux.stats.get("rx[5]") == 1


# ---------------------------------------------------------------------------
# Teardown: channel detach and removal
# ---------------------------------------------------------------------------
def test_detach_allows_rewiring():
    mux = Multiplexer(lambda m: None)
    channel = mux.channel(1)
    channel.on_deliver(lambda m: None)
    assert channel.wired
    channel.detach()
    assert not channel.wired
    got = []
    channel.on_deliver(got.append)  # no StackError: detach cleared the slot
    mux.receive(make_msg().with_header("mux", 1, 2))
    assert len(got) == 1


def test_detached_channel_rejects_traffic():
    mux = Multiplexer(lambda m: None)
    channel = mux.channel(1)
    channel.on_deliver(lambda m: None)
    channel.detach()
    with pytest.raises(StackError, match="before wiring"):
        mux.receive(make_msg().with_header("mux", 1, 2))


def test_remove_channel_drops_routing():
    mux = Multiplexer(lambda m: None)
    mux.channel(1).on_deliver(lambda m: None)
    mux.remove_channel(1)
    with pytest.raises(StackError, match="unknown mux channel"):
        mux.receive(make_msg().with_header("mux", 1, 2))


def test_remove_channel_unknown_id_raises():
    mux = Multiplexer(lambda m: None)
    with pytest.raises(StackError, match="no mux channel"):
        mux.remove_channel(9)


def test_removed_channel_can_be_recreated_fresh():
    mux = Multiplexer(lambda m: None)
    old = mux.channel(1)
    old.on_deliver(lambda m: None)
    mux.remove_channel(1)
    fresh = mux.channel(1)
    assert fresh is not old
    assert not fresh.wired


# ---------------------------------------------------------------------------
# Group-keyed channels: the fleet's sharing point
# ---------------------------------------------------------------------------
def test_same_channel_id_distinct_per_group():
    mux = Multiplexer(lambda m, g=0: None)
    assert mux.channel(1) is not mux.channel(1, group=7)
    assert mux.channel(1, group=7) is mux.channel(1, group=7)


def test_group_traffic_routed_by_group_key():
    mux = Multiplexer(lambda m, g=0: None)
    got_zero, got_seven = [], []
    mux.channel(1).on_deliver(got_zero.append)
    mux.channel(1, group=7).on_deliver(got_seven.append)
    mux.receive(make_msg().with_header("mux", 1, 2), group=7)
    assert got_zero == []
    assert len(got_seven) == 1


def test_group_send_passes_group_to_bottom():
    wire = []
    mux = Multiplexer(lambda m, g=0: wire.append((m, g)))
    mux.channel(2, group=9).send(make_msg())
    assert wire[0][1] == 9
    assert mux.stats.get("tx[g9:2]") == 1


def test_remove_channel_is_group_scoped():
    mux = Multiplexer(lambda m, g=0: None)
    mux.channel(1).on_deliver(lambda m: None)
    mux.channel(1, group=7).on_deliver(lambda m: None)
    mux.remove_channel(1, group=7)
    # Group 0's channel 1 is untouched.
    mux.receive(make_msg().with_header("mux", 1, 2))
    with pytest.raises(StackError, match="unknown mux channel"):
        mux.receive(make_msg().with_header("mux", 1, 2), group=7)


def test_group_channels_lists_only_that_group():
    mux = Multiplexer(lambda m, g=0: None)
    mux.channel(1)
    a = mux.channel(1, group=7)
    b = mux.channel(2, group=7)
    assert set(mux.group_channels(7)) == {a, b}
    assert len(mux.group_channels(0)) == 1
