"""Unit tests for layer composition."""

import pytest

from repro.errors import StackError
from repro.sim.engine import Simulator
from repro.stack.layer import Layer, LayerContext, compose, start_layers
from repro.stack.membership import Group
from repro.stack.message import Message


def make_ctx(rank=0, size=3):
    return LayerContext(Simulator(), Group.of_size(size), rank)


def make_msg(ctx, body="x"):
    return ctx.make_message(body, 10)


class Tagger(Layer):
    """Test layer: tags on the way down, pops on the way up."""

    def __init__(self, key):
        super().__init__()
        self.name = key
        self.key = key

    def send(self, msg):
        self.send_down(msg.with_header(self.key, True, 1))

    def receive(self, msg):
        self.deliver_up(msg.without_header(self.key, 1))


class TestLayerContext:
    def test_rank_must_be_member(self):
        with pytest.raises(StackError):
            LayerContext(Simulator(), Group.of_size(2), 9)

    def test_mids_are_unique_and_monotonic(self):
        ctx = make_ctx(rank=2)
        mids = [ctx.next_mid() for __ in range(5)]
        assert mids == [(2, i) for i in range(5)]

    def test_make_message_uses_rank(self):
        ctx = make_ctx(rank=1)
        msg = ctx.make_message("b", 5, dest=(0,))
        assert msg.sender == 1
        assert msg.dest == (0,)

    def test_cpu_work_zero_is_synchronous(self):
        ctx = make_ctx()
        done = []
        ctx.cpu_work(0.0, lambda: done.append(True))
        assert done == [True]

    def test_cpu_work_falls_back_to_delay(self):
        ctx = make_ctx()
        done = []
        ctx.cpu_work(0.5, lambda: done.append(ctx.now))
        ctx.sim.run()
        assert done == [0.5]

    def test_after_schedules_timer(self):
        ctx = make_ctx()
        fired = []
        ctx.after(0.2, lambda: fired.append(ctx.now))
        ctx.sim.run()
        assert fired == [0.2]


class TestCompose:
    def test_empty_pipeline_is_identity(self):
        ctx = make_ctx()
        down, up = [], []
        top_send, bottom_receive = compose([], ctx, down.append, up.append)
        msg = make_msg(ctx)
        top_send(msg)
        bottom_receive(msg)
        assert down == [msg]
        assert up == [msg]

    def test_headers_nest_correctly(self):
        ctx = make_ctx()
        wire, app = [], []
        layers = [Tagger("outer"), Tagger("inner")]
        top_send, bottom_receive = compose(layers, ctx, wire.append, app.append)
        start_layers(layers)
        top_send(make_msg(ctx))
        assert len(wire) == 1
        assert wire[0].has_header("outer") and wire[0].has_header("inner")
        bottom_receive(wire[0])
        assert len(app) == 1
        assert not app[0].has_header("outer")
        assert not app[0].has_header("inner")

    def test_identity_layer_passes_through(self):
        ctx = make_ctx()
        wire, app = [], []
        layers = [Layer()]
        top_send, bottom_receive = compose(layers, ctx, wire.append, app.append)
        start_layers(layers)
        msg = make_msg(ctx)
        top_send(msg)
        bottom_receive(msg)
        assert wire == [msg] and app == [msg]

    def test_layer_cannot_be_bound_twice(self):
        ctx = make_ctx()
        layer = Layer()
        compose([layer], ctx, lambda m: None, lambda m: None)
        with pytest.raises(StackError):
            compose([layer], ctx, lambda m: None, lambda m: None)

    def test_start_before_wiring_rejected(self):
        with pytest.raises(StackError):
            Layer().start()

    def test_unwired_emission_rejected(self):
        layer = Layer()
        layer.bind(make_ctx())
        with pytest.raises(StackError):
            layer.send_down(None)
        with pytest.raises(StackError):
            layer.deliver_up(None)

    def test_default_can_send_true(self):
        assert Layer().can_send() is True
