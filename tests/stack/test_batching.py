"""Unit and integration tests for the batching layer."""

import pytest

from helpers import switch_group
from repro.core.switchable import ProtocolSpec
from repro.errors import StackError
from repro.obs.bus import Bus
from repro.protocols.sequencer import SequencerLayer
from repro.protocols.tokenring import TokenRingLayer
from repro.sim.engine import Simulator
from repro.stack.batching import BatchingLayer
from repro.stack.layer import LayerContext, compose, start_layers
from repro.stack.membership import Group
from repro.stack.message import BASE_WIRE_OVERHEAD


def make_wired(max_batch=3, linger=0.0, rank=0, size=3, bus=None):
    """One BatchingLayer with its wire taps: (sim, layer, sent, delivered)."""
    sim = Simulator()
    ctx = LayerContext(sim, Group.of_size(size), rank, bus=bus)
    layer = BatchingLayer(max_batch=max_batch, linger=linger)
    sent, delivered = [], []
    compose([layer], ctx, sent.append, delivered.append)
    start_layers([layer])
    return sim, ctx, layer, sent, delivered


class TestValidation:
    def test_max_batch_must_be_positive(self):
        with pytest.raises(StackError):
            BatchingLayer(max_batch=0)

    def test_linger_must_be_non_negative(self):
        with pytest.raises(StackError):
            BatchingLayer(linger=-0.1)


class TestBatchAssembly:
    def test_full_batch_is_one_wire_frame(self):
        sim, ctx, layer, sent, delivered = make_wired(max_batch=3)
        msgs = [ctx.make_message(i, 100) for i in range(3)]
        for m in msgs:
            layer.send(m)
        assert len(sent) == 1
        frame = sent[0]
        assert frame.header("batch") == {"n": 3}
        assert frame.body == tuple(msgs)

    def test_batch_pays_one_wire_overhead(self):
        sim, ctx, layer, sent, delivered = make_wired(max_batch=2)
        msgs = [ctx.make_message(i, 100) for i in range(2)]
        for m in msgs:
            layer.send(m)
        frame = sent[0]
        separate = sum(m.size_bytes for m in msgs)
        assert frame.size_bytes < separate

    def test_linger_flushes_partial_batch(self):
        sim, ctx, layer, sent, delivered = make_wired(max_batch=100, linger=0.01)
        layer.send(ctx.make_message("a", 10))
        layer.send(ctx.make_message("b", 10))
        assert sent == []
        assert layer.queued == 2
        sim.run()
        assert len(sent) == 1
        assert sent[0].header("batch") == {"n": 2}
        assert layer.queued == 0

    def test_zero_linger_flushes_after_current_cascade(self):
        sim, ctx, layer, sent, delivered = make_wired(max_batch=100, linger=0.0)
        layer.send(ctx.make_message("a", 10))
        assert sent == []  # not synchronous...
        sim.run()
        assert len(sent) == 1  # ...but flushed at the same instant
        assert sim.now == 0.0

    def test_singleton_flush_goes_out_bare(self):
        sim, ctx, layer, sent, delivered = make_wired(max_batch=8, linger=0.001)
        msg = ctx.make_message("solo", 10)
        layer.send(msg)
        sim.run()
        assert sent == [msg]  # the original message, no wrapper
        assert not sent[0].has_header("batch")

    def test_size_flush_cancels_linger_timer(self):
        sim, ctx, layer, sent, delivered = make_wired(max_batch=2, linger=5.0)
        layer.send(ctx.make_message("a", 10))
        layer.send(ctx.make_message("b", 10))
        assert len(sent) == 1
        sim.run()  # the cancelled timer must not produce a second flush
        assert len(sent) == 1
        assert sim.pending() == 0

    def test_control_traffic_passes_through_unbatched(self):
        sim, ctx, layer, sent, delivered = make_wired(max_batch=8, linger=1.0)
        control = ctx.make_message(("token",), 16, dest=(1,))
        layer.send(control)
        assert sent == [control]
        assert layer.queued == 0


class TestUnbatching:
    def test_constituents_delivered_in_order(self):
        sim, ctx, layer, sent, delivered = make_wired(max_batch=3)
        msgs = [ctx.make_message(i, 10) for i in range(3)]
        for m in msgs:
            layer.send(m)
        layer.receive(sent[0])
        assert delivered == msgs

    def test_non_batch_traffic_delivered_untouched(self):
        sim, ctx, layer, sent, delivered = make_wired()
        msg = ctx.make_message("plain", 10)
        layer.receive(msg)
        assert delivered == [msg]


class TestObservability:
    def test_batch_metrics_recorded_when_enabled(self):
        bus = Bus(enabled=True)
        sim, ctx, layer, sent, delivered = make_wired(max_batch=2, bus=bus)
        for i in range(4):
            layer.send(ctx.make_message(i, 10))
        assert bus.metrics.counter("batch.batches") == 2
        assert bus.metrics.counter("batch.messages") == 4
        histogram = bus.metrics.histogram("batch.size_msgs")
        assert histogram is not None
        assert histogram.count == 2
        assert histogram.maximum == 2.0

    def test_no_metrics_when_disabled(self):
        bus = Bus(enabled=False)
        sim, ctx, layer, sent, delivered = make_wired(max_batch=2, bus=bus)
        for i in range(2):
            layer.send(ctx.make_message(i, 10))
        assert bus.metrics.empty


def batched_specs(max_batch=4, linger=0.002):
    return [
        ProtocolSpec(
            "seq",
            lambda r: [BatchingLayer(max_batch, linger), SequencerLayer()],
        ),
        ProtocolSpec(
            "tok",
            lambda r: [BatchingLayer(max_batch, linger), TokenRingLayer()],
        ),
    ]


@pytest.mark.parametrize("variant", ["token", "broadcast"])
class TestBatchingUnderTheSwitchingProtocol:
    def test_send_count_vectors_count_constituents(self, variant):
        """A batch counts as its constituent messages: core.sent ticks per
        application cast, core.delivered per unpacked constituent — so the
        SWITCH vector drain check stays exact."""
        sim, stacks, log = switch_group(3, batched_specs(), "seq", variant)
        for i in range(7):  # deliberately not a multiple of max_batch
            sim.schedule_at(
                0.001 * (i + 1), lambda i=i: stacks[i % 3].cast(i, 64)
            )
        sim.run_until(1.0)
        sent_totals = [stacks[r].core.sent["seq"] for r in range(3)]
        assert sum(sent_totals) == 7
        for r in range(3):
            per_member = stacks[r].core.delivered["seq"]
            assert sum(per_member.values()) == 7
            for origin in range(3):
                assert per_member.get(origin, 0) == stacks[origin].core.sent["seq"]

    def test_switch_drains_exactly_with_batches_in_flight(self, variant):
        sim, stacks, log = switch_group(4, batched_specs(), "seq", variant)
        for i in range(24):
            sim.schedule_at(
                0.002 * (i + 1), lambda i=i: stacks[i % 4].cast(("m", i), 64)
            )
        sim.schedule_at(0.02, lambda: stacks[0].request_switch("tok"))
        sim.run_until(2.0)
        assert all(s.current_protocol == "tok" for s in stacks.values())
        assert all(not s.switching for s in stacks.values())
        assert log.all_agree()
        assert len(log.bodies(0)) == 24

    def test_total_order_holds_across_batched_switch(self, variant):
        sim, stacks, log = switch_group(
            3, batched_specs(max_batch=8, linger=0.005), "seq", variant, seed=9
        )
        for i in range(30):
            sim.schedule_at(
                0.003 * (i + 1), lambda i=i: stacks[i % 3].cast(i, 32)
            )
        sim.schedule_at(0.05, lambda: stacks[1].request_switch("tok"))
        sim.run_until(2.0)
        assert log.all_agree()
        assert sorted(log.bodies(0)) == list(range(30))


def test_batched_switch_demo_oracle_holds():
    """End-to-end `repro run` path with batching enabled."""
    from repro.workloads.switchrun import SwitchRunConfig, run_switch_demo

    result = run_switch_demo(
        SwitchRunConfig(
            members=4, duration=1.5, rate=120.0, switch_at=0.7,
            max_batch=6, linger=0.002,
        )
    )
    assert result.ok, result.violations
    assert len(set(result.delivered.values())) == 1
