"""Equivalence of the persistent-header Message with a dict model.

The persistent chain is an internal optimization; under any sequence of
pushes and pops a :class:`Message` must behave exactly like the original
dict-copy-on-write implementation.  Hypothesis drives both through
randomized operation sequences and compares every observable.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StackError
from repro.stack.message import BASE_WIRE_OVERHEAD, Message

KEYS = ["fifo", "seqr", "tring", "rel", "batch", "mux", "causal", "vs"]

VALUES = st.one_of(
    st.integers(-2**40, 2**40),
    st.text(max_size=8),
    st.dictionaries(st.sampled_from(["k", "gseq", "ep"]), st.integers(), max_size=3),
    st.tuples(st.integers(), st.integers()),
    st.none(),
)


class DictModel:
    """The original copy-on-write semantics, kept as the oracle."""

    def __init__(self):
        self.headers = {}
        self.header_size = 0

    def push(self, key, value, size):
        if key in self.headers:
            raise StackError(f"header {key!r} already present")
        self.headers = dict(self.headers)
        self.headers[key] = value
        self.header_size += size

    def pop(self, key, size):
        if key not in self.headers:
            raise StackError(f"header {key!r} missing")
        self.headers = dict(self.headers)
        del self.headers[key]
        self.header_size = max(0, self.header_size - size)


operations = st.lists(
    st.tuples(
        st.sampled_from(["push", "pop"]),
        st.sampled_from(KEYS),
        VALUES,
        st.integers(0, 64),
    ),
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(ops=operations)
def test_random_push_pop_matches_dict_model(ops):
    msg = Message(sender=0, mid=(0, 0), body="b", body_size=10)
    model = DictModel()
    for op, key, value, size in ops:
        if op == "push":
            try:
                model.push(key, value, size)
            except StackError:
                with pytest.raises(StackError):
                    msg.with_header(key, value, size)
                continue
            msg = msg.with_header(key, value, size)
        else:
            try:
                model.pop(key, size)
            except StackError:
                with pytest.raises(StackError):
                    msg.without_header(key, size)
                continue
            msg = msg.without_header(key, size)
        assert dict(msg.headers) == model.headers
        assert msg.size_bytes == 10 + model.header_size + BASE_WIRE_OVERHEAD
        for probe in KEYS:
            assert msg.has_header(probe) == (probe in model.headers)
            assert msg.header(probe, "absent") == model.headers.get(probe, "absent")
    # Survives the wire: pickling collapses the chain to a plain dict.
    clone = pickle.loads(pickle.dumps(msg))
    assert dict(clone.headers) == model.headers
    assert clone.size_bytes == msg.size_bytes


@settings(max_examples=50, deadline=None)
@given(ops=operations)
def test_persistence_ancestors_unchanged(ops):
    """Every intermediate message keeps its snapshot after later ops."""
    msg = Message(sender=0, mid=(0, 0), body="b", body_size=10)
    snapshots = [(msg, dict(msg.headers))]
    for op, key, value, size in ops:
        try:
            msg = (
                msg.with_header(key, value, size)
                if op == "push"
                else msg.without_header(key, size)
            )
        except StackError:
            continue
        snapshots.append((msg, dict(msg.headers)))
    for snapshot, expected in snapshots:
        assert dict(snapshot.headers) == expected


def test_deep_churn_stays_bounded():
    """Pathological push/pop churn compacts instead of growing a chain."""
    msg = Message(sender=0, mid=(0, 0), body=None, body_size=0)
    msg = msg.with_header("base", 0)
    for i in range(500):
        msg = msg.with_header("churn", i)
        # Pop out of order (the deep key) to force tombstones.
        msg = msg.without_header("base")
        msg = msg.with_header("base", i)
        msg = msg.without_header("churn")
    node, depth = msg._chain, 0
    while type(node) is tuple:
        node, depth = node[0], depth + 1
    assert depth < 64
    assert dict(msg.headers) == {"base": 499}
