"""Unit tests for groups, rings, and views."""

import pytest

from repro.errors import StackError
from repro.stack.membership import Group, View


class TestGroup:
    def test_of_size(self):
        group = Group.of_size(4)
        assert group.members == (0, 1, 2, 3)
        assert group.size == 4

    def test_sorted_members(self):
        assert Group([3, 1, 2]).members == (1, 2, 3)

    def test_coordinator_is_lowest_rank(self):
        assert Group([5, 2, 9]).coordinator == 2

    def test_empty_rejected(self):
        with pytest.raises(StackError):
            Group([])

    def test_duplicates_rejected(self):
        with pytest.raises(StackError):
            Group([1, 1, 2])

    def test_contains(self):
        group = Group([1, 3])
        assert 1 in group
        assert 2 not in group

    def test_others(self):
        assert Group.of_size(3).others(1) == (0, 2)

    def test_others_requires_membership(self):
        with pytest.raises(StackError):
            Group.of_size(3).others(7)

    def test_ring_successor_wraps(self):
        group = Group.of_size(3)
        assert group.ring_successor(0) == 1
        assert group.ring_successor(2) == 0

    def test_ring_successor_non_contiguous(self):
        group = Group([1, 4, 9])
        assert group.ring_successor(9) == 1

    def test_ring_distance(self):
        group = Group.of_size(4)
        assert group.ring_distance(1, 3) == 2
        assert group.ring_distance(3, 1) == 2
        assert group.ring_distance(2, 2) == 0

    def test_singleton_ring(self):
        assert Group([7]).ring_successor(7) == 7

    def test_equality_and_hash(self):
        assert Group([2, 1]) == Group([1, 2])
        assert hash(Group([2, 1])) == hash(Group([1, 2]))


class TestView:
    def test_fields(self):
        view = View(3, (0, 1, 2))
        assert view.view_id == 3
        assert 1 in view
        assert 5 not in view
        assert view.coordinator == 0

    def test_negative_id_rejected(self):
        with pytest.raises(StackError):
            View(-1, (0,))

    def test_duplicate_members_rejected(self):
        with pytest.raises(StackError):
            View(0, (1, 1))

    def test_frozen(self):
        view = View(0, (0, 1))
        with pytest.raises(AttributeError):
            view.view_id = 5
