"""Unit tests for process stacks, transport, and group building."""

import pytest

from helpers import DeliveryLog, ptp_group
from repro.errors import StackError
from repro.net.ptp import PointToPointNetwork
from repro.protocols.fifo import FifoLayer
from repro.sim.engine import Simulator
from repro.stack.membership import Group
from repro.stack.stack import ProcessStack, build_group
from repro.stack.transport import Transport


class TestTransport:
    def test_dest_none_multicasts_to_whole_group_including_self(self):
        sim, stacks, log = ptp_group(3, lambda r: [])
        stacks[0].cast("m", 10)
        sim.run()
        for rank in range(3):
            assert log.bodies(rank) == ["m"]

    def test_unicast_dest(self):
        sim, stacks, log = ptp_group(3, lambda r: [])
        msg = stacks[0].ctx.make_message("u", 10, dest=(2,))
        stacks[0].transport.send(msg)
        sim.run()
        assert log.bodies(0) == []
        assert log.bodies(1) == []
        assert log.bodies(2) == ["u"]

    def test_subset_multicast(self):
        sim, stacks, log = ptp_group(3, lambda r: [])
        msg = stacks[1].ctx.make_message("s", 10, dest=(0, 2))
        stacks[1].transport.send(msg)
        sim.run()
        assert log.bodies(0) == ["s"]
        assert log.bodies(1) == []
        assert log.bodies(2) == ["s"]

    def test_empty_dest_is_noop(self):
        sim, stacks, log = ptp_group(2, lambda r: [])
        msg = stacks[0].ctx.make_message("n", 10, dest=())
        stacks[0].transport.send(msg)
        sim.run()
        assert log.bodies(0) == [] and log.bodies(1) == []
        assert stacks[0].transport.stats.get("empty_dest") == 1

    def test_non_message_payload_rejected(self):
        sim = Simulator()
        net = PointToPointNetwork(sim, 2)
        group = Group.of_size(2)
        transport = Transport(net, group, 0)
        transport.on_receive(lambda m: None)
        other = net.attach(1, lambda p: None)
        other.unicast(0, "raw-not-a-message", 10)
        with pytest.raises(StackError):
            sim.run()

    def test_rank_must_be_in_group(self):
        sim = Simulator()
        net = PointToPointNetwork(sim, 3)
        with pytest.raises(StackError):
            Transport(net, Group([0, 1]), 2)


class TestProcessStack:
    def test_cast_returns_mid(self):
        sim, stacks, log = ptp_group(2, lambda r: [])
        mid = stacks[0].cast("hello")
        assert mid == (0, 0)
        assert stacks[0].cast("again") == (0, 1)

    def test_multiple_deliver_callbacks(self):
        sim, stacks, log = ptp_group(2, lambda r: [])
        extra = []
        stacks[1].on_deliver(lambda m: extra.append(m.body))
        stacks[0].cast("m", 10)
        sim.run()
        assert extra == ["m"]

    def test_send_hooks_fire_at_cast(self):
        sim, stacks, log = ptp_group(2, lambda r: [])
        sends = []
        stacks[0].on_send(lambda m: sends.append(m.mid))
        stacks[0].cast("m", 10)
        assert sends == [(0, 0)]

    def test_find_layer(self):
        sim, stacks, log = ptp_group(2, lambda r: [FifoLayer()])
        assert isinstance(stacks[0].find_layer(FifoLayer), FifoLayer)
        with pytest.raises(StackError):
            stacks[0].find_layer(Transport)

    def test_can_send_default(self):
        sim, stacks, log = ptp_group(2, lambda r: [FifoLayer()])
        assert stacks[0].can_send()


class TestBuildGroup:
    def test_builds_one_stack_per_member(self):
        sim, stacks, log = ptp_group(5, lambda r: [])
        assert sorted(stacks) == [0, 1, 2, 3, 4]

    def test_factory_receives_rank(self):
        ranks = []
        sim, stacks, log = ptp_group(3, lambda r: ranks.append(r) or [])
        assert sorted(ranks) == [0, 1, 2]

    def test_full_mesh_communication(self):
        sim, stacks, log = ptp_group(4, lambda r: [])
        for rank in range(4):
            stacks[rank].cast(f"from{rank}", 10)
        sim.run()
        for rank in range(4):
            assert sorted(log.bodies(rank)) == [f"from{i}" for i in range(4)]
