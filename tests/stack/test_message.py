"""Unit tests for messages and headers."""

import pytest

from repro.errors import StackError
from repro.stack.message import BASE_WIRE_OVERHEAD, Message


def make(body="hello", size=100):
    return Message(sender=1, mid=(1, 0), body=body, body_size=size)


class TestHeaders:
    def test_with_header_returns_new_message(self):
        msg = make()
        tagged = msg.with_header("fifo", 7)
        assert tagged is not msg
        assert tagged.header("fifo") == 7
        assert not msg.has_header("fifo")  # original untouched

    def test_double_push_rejected(self):
        msg = make().with_header("fifo", 1)
        with pytest.raises(StackError):
            msg.with_header("fifo", 2)

    def test_without_header_pops(self):
        msg = make().with_header("fifo", 1)
        plain = msg.without_header("fifo")
        assert not plain.has_header("fifo")

    def test_pop_missing_header_rejected(self):
        with pytest.raises(StackError):
            make().without_header("nope")

    def test_header_default(self):
        assert make().header("absent", "fallback") == "fallback"

    def test_headers_mapping_is_read_only(self):
        msg = make().with_header("x", 1)
        view = msg.headers
        with pytest.raises(TypeError):
            view["x"] = 99
        assert msg.header("x") == 1
        assert dict(view) == {"x": 1}

    def test_headers_view_tracks_push_order(self):
        msg = make().with_header("a", 1).with_header("b", 2)
        assert list(msg.headers) == ["a", "b"]

    def test_out_of_order_pop_shadows(self):
        msg = make().with_header("a", 1).with_header("b", 2)
        inner = msg.without_header("a")
        assert not inner.has_header("a")
        assert inner.header("b") == 2
        assert dict(inner.headers) == {"b": 2}
        # The original is untouched (persistence, not mutation).
        assert msg.header("a") == 1

    def test_repush_after_out_of_order_pop(self):
        msg = make().with_header("a", 1).with_header("b", 2)
        again = msg.without_header("a").with_header("a", 9)
        assert again.header("a") == 9
        assert again.header("b") == 2

    def test_header_dict_constructor_round_trip(self):
        msg = Message(
            sender=1, mid=(1, 0), body="x", body_size=8,
            headers={"a": 1, "b": 2}, header_size=32,
        )
        assert msg.header("a") == 1
        assert msg.without_header("b").header("a") == 1

    def test_pickle_round_trip_preserves_headers(self):
        import pickle

        msg = (
            make()
            .with_header("a", 1)
            .with_header("b", {"k": "ord", "gseq": 7})
            .without_header("a")
        )
        clone = pickle.loads(pickle.dumps(msg))
        assert clone.mid == msg.mid
        assert dict(clone.headers) == dict(msg.headers)
        assert clone.size_bytes == msg.size_bytes

    def test_stacked_headers(self):
        msg = make().with_header("a", 1).with_header("b", 2).with_header("c", 3)
        assert msg.header("a") == 1
        assert msg.header("b") == 2
        assert msg.header("c") == 3


class TestSizeAccounting:
    def test_base_size(self):
        assert make(size=100).size_bytes == 100 + BASE_WIRE_OVERHEAD

    def test_header_size_accumulates(self):
        msg = make(size=100).with_header("a", 1, size=10).with_header("b", 2, size=6)
        assert msg.size_bytes == 100 + 16 + BASE_WIRE_OVERHEAD

    def test_pop_releases_size(self):
        msg = make(size=100).with_header("a", 1, size=10)
        assert msg.without_header("a", size=10).size_bytes == 100 + BASE_WIRE_OVERHEAD

    def test_negative_body_size_rejected(self):
        with pytest.raises(StackError):
            Message(sender=0, mid=(0, 0), body=None, body_size=-1)


class TestRoutingAndBody:
    def test_with_dest(self):
        msg = make().with_dest((2, 3))
        assert msg.dest == (2, 3)
        assert make().dest is None

    def test_with_dest_none_resets(self):
        msg = make().with_dest((2,)).with_dest(None)
        assert msg.dest is None

    def test_with_body_transforms(self):
        msg = make(body="plain").with_body("sealed", 120)
        assert msg.body == "sealed"
        assert msg.body_size == 120
        assert msg.mid == (1, 0)

    def test_with_body_keeps_size_by_default(self):
        msg = make(size=100).with_body("other")
        assert msg.body_size == 100


class TestIdentity:
    def test_equality_by_mid(self):
        a = Message(sender=1, mid=(1, 5), body="x", body_size=1)
        b = Message(sender=1, mid=(1, 5), body="y", body_size=9)
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        a = Message(sender=1, mid=(1, 5), body="x", body_size=1)
        b = Message(sender=1, mid=(1, 6), body="x", body_size=1)
        assert a != b

    def test_headers_do_not_affect_identity(self):
        msg = make()
        assert msg == msg.with_header("h", 1)


class TestShellPool:
    """Recycling of decoded-message shells on the deliver path."""

    def setup_method(self):
        Message.pool_clear()

    def _decoded(self, seq=0, chain=None):
        return Message._from_wire(
            sender=1, mid=(1, seq), body=("b", seq), body_size=32,
            dest=None, header_size=0, chain=chain,
        )

    def test_recycle_reuses_the_same_shell(self):
        msg = self._decoded()
        assert Message._recycle(msg) is True
        again = self._decoded(seq=1)
        assert again is msg  # same object, new identity
        assert again.mid == (1, 1)
        stats = Message.pool_stats()
        assert stats["new"] == 1 and stats["reused"] == 1

    def test_recycle_strips_unbounded_references(self):
        from repro.stack.message import _POOL

        chain = (1 << (hash("fifo") & 63), None, "fifo", 7)
        msg = self._decoded(chain=chain)
        assert msg.headers == {"fifo": 7}  # materializes the _hmap cache
        assert Message._recycle(msg) is True
        shell = _POOL[-1]
        # Exactly the slots that can pin arbitrary object graphs are
        # stripped; bounded stale scalars (sender, mid, dest ranks) are
        # left for _from_wire to overwrite.  The lazy caches are
        # stripped to the None sentinel, not deleted.
        assert shell.body is None
        assert shell._chain is None
        assert shell._hmap is None
        assert shell._pop is None

    def test_recycled_shell_carries_no_stale_header_cache(self):
        chain = (1 << (hash("fifo") & 63), None, "fifo", 7)
        msg = self._decoded(chain=chain)
        assert dict(msg.headers) == {"fifo": 7}
        popped = msg.without_header("fifo")  # sets the _pop memo
        assert not popped.has_header("fifo")
        del popped
        Message._recycle(msg)
        fresh = self._decoded(seq=2)  # reuses the shell, no headers
        assert dict(fresh.headers) == {}
        assert not fresh.has_header("fifo")

    def test_retained_message_is_refused(self):
        msg = self._decoded()
        retainer = [msg]
        assert Message._recycle(msg) is False
        assert msg.body == ("b", 0)  # untouched
        assert retainer[0].mid == (1, 0)
        assert Message.pool_stats()["rejected"] == 1

    def test_pool_cap_bounds_free_shells(self):
        from repro.stack import message as message_mod

        original = message_mod._POOL_CAP
        message_mod._POOL_CAP = 4
        try:
            batch = [self._decoded(seq=i) for i in range(8)]
            results = []
            while batch:
                msg = batch.pop()
                results.append(Message._recycle(msg))
                del msg
            assert results.count(True) == 4
            assert Message.pool_stats()["free"] == 4
        finally:
            message_mod._POOL_CAP = original

    def test_leak_check_invariant_under_churn(self):
        # Every shell ever acquired is free, refused-while-referenced,
        # or still owned; the counters must always account for all of
        # them.
        kept = []
        for i in range(50):
            msg = self._decoded(seq=i)
            if i % 5 == 0:
                kept.append(msg)  # simulated retention by a layer
            Message._recycle(msg)
        stats = Message.pool_stats()
        assert stats["new"] + stats["reused"] == 50
        assert stats["recycled"] == 40
        assert stats["rejected"] == 10
        assert stats["free"] <= stats["recycled"]
        assert all(m.mid == (1, i * 5) for i, m in enumerate(kept))
