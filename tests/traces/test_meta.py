"""Unit tests for the six meta-property relations."""

import pytest

from repro.traces.events import deliver, msg, send
from repro.traces.meta import (
    ALL_META_PROPERTIES,
    Asynchrony,
    Composable,
    Delayable,
    Memoryless,
    Safety,
    SendEnabled,
)
from repro.traces.trace import Trace


def sample_trace():
    m1, m2 = msg(0, 0, "a"), msg(1, 0, "b")
    return Trace([send(m1), deliver(1, m1), send(m2), deliver(0, m2)])


class TestSafety:
    def test_yields_all_proper_prefixes(self):
        trace = sample_trace()
        variants = list(Safety().variants(trace))
        assert len(variants) == 4
        assert variants[0] == Trace()
        assert all(len(v) < len(trace) for v in variants)

    def test_empty_trace_has_no_variants(self):
        assert list(Safety().variants(Trace())) == []


class TestAsynchrony:
    def test_swaps_only_cross_process_pairs(self):
        m = msg(0, 0)
        # D(1,m) S(0,m2): different processes -> swappable
        m2 = msg(0, 1)
        trace = Trace([deliver(1, m), send(m2)])
        variants = list(Asynchrony().variants(trace))
        assert variants == [Trace([send(m2), deliver(1, m)])]

    def test_same_process_pairs_not_swapped(self):
        m, m2 = msg(0, 0), msg(0, 1)
        trace = Trace([deliver(0, m), send(m2)])  # both at process 0
        assert list(Asynchrony().variants(trace)) == []

    def test_send_process_is_the_sender(self):
        m1, m2 = msg(0, 0), msg(1, 0)
        trace = Trace([send(m1), send(m2)])
        assert len(list(Asynchrony().variants(trace))) == 1


class TestDelayable:
    def test_swaps_deliver_then_send_same_process(self):
        m, m2 = msg(1, 0), msg(0, 5)
        trace = Trace([deliver(0, m), send(m2)])  # deliver at 0, send by 0
        variants = list(Delayable().variants(trace))
        assert variants == [Trace([send(m2), deliver(0, m)])]

    def test_send_then_deliver_not_swapped(self):
        """The relation is directional: only the Send may move earlier."""
        m, m2 = msg(1, 0), msg(0, 5)
        trace = Trace([send(m2), deliver(0, m)])
        assert list(Delayable().variants(trace)) == []

    def test_cross_process_pairs_not_swapped(self):
        m, m2 = msg(1, 0), msg(2, 5)
        trace = Trace([deliver(0, m), send(m2)])
        assert list(Delayable().variants(trace)) == []


class TestSendEnabled:
    def test_appends_fresh_sends(self):
        trace = sample_trace()
        variants = list(SendEnabled().variants(trace))
        assert variants
        for variant in variants:
            assert len(variant) == len(trace) + 1
            appended = variant[len(trace)]
            assert appended.mid not in trace.messages()

    def test_reuses_existing_bodies(self):
        trace = sample_trace()
        bodies = {v[len(trace)].msg.body for v in SendEnabled().variants(trace)}
        assert "a" in bodies and "b" in bodies

    def test_explicit_process_set(self):
        trace = sample_trace()
        variants = list(SendEnabled(processes=[7]).variants(trace))
        assert all(v[len(trace)].msg.sender == 7 for v in variants)


class TestMemoryless:
    def test_erases_single_messages(self):
        trace = sample_trace()
        variants = list(Memoryless(erase_pairs=False).variants(trace))
        assert len(variants) == 2
        for variant in variants:
            assert len(variant) == 2  # each message has 2 events

    def test_erases_pairs_when_enabled(self):
        trace = sample_trace()
        variants = list(Memoryless(erase_pairs=True).variants(trace))
        assert len(variants) == 3
        assert Trace() in variants


class TestComposable:
    def test_disjoint_pair_composable(self):
        t1 = Trace([send(msg(0, 0))])
        t2 = Trace([send(msg(0, 1))])
        assert Composable.composable_pair(t1, t2)
        assert len(Composable.compose(t1, t2)) == 2

    def test_shared_message_not_composable(self):
        m = msg(0, 0)
        assert not Composable.composable_pair(
            Trace([send(m)]), Trace([deliver(1, m)])
        )

    def test_variants_is_empty(self):
        assert list(Composable().variants(sample_trace())) == []


def test_all_meta_properties_in_table_order():
    names = [m.name for m in ALL_META_PROPERTIES]
    assert names == [
        "Safety",
        "Asynchrony",
        "Send Enabled",
        "Delayable",
        "Memoryless",
        "Composable",
    ]


def test_variants_always_yield_valid_traces():
    trace = sample_trace()
    for meta in ALL_META_PROPERTIES:
        for variant in meta.variants(trace):
            assert isinstance(variant, Trace)  # construction validates
