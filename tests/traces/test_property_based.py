"""Property-based (hypothesis) tests for the trace calculus.

These widen the bounded-exhaustive Table 2 check with randomized, larger
universes, and check structural invariants of the relations themselves.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.stack.message import Message
from repro.traces.events import DeliverEvent, SendEvent
from repro.traces.generators import (
    random_amoeba_execution,
    random_master_first_execution,
    random_reliable_execution,
    random_total_order_execution,
    random_vs_execution,
)
from repro.traces.meta import (
    Asynchrony,
    Delayable,
    Memoryless,
    Safety,
    SendEnabled,
)
from repro.traces.properties import (
    Amoeba,
    Confidentiality,
    Integrity,
    NoReplay,
    PrioritizedDelivery,
    TotalOrder,
    VirtualSynchrony,
)
from repro.traces.trace import Trace

# ----------------------------------------------------------------------
# Trace strategies
# ----------------------------------------------------------------------
PROCESSES = (0, 1, 2)


@st.composite
def messages_strategy(draw, max_messages=4, shared_bodies=False):
    count = draw(st.integers(1, max_messages))
    msgs = []
    for i in range(count):
        sender = draw(st.sampled_from(PROCESSES))
        body = f"b{i % 2}" if shared_bodies else f"b{i}"
        msgs.append(
            Message(sender=sender, mid=(sender, i), body=body, body_size=1)
        )
    return msgs


@st.composite
def traces(draw, max_len=8, shared_bodies=False):
    msgs = draw(messages_strategy(shared_bodies=shared_bodies))
    events = []
    sent = set()
    for __ in range(draw(st.integers(0, max_len))):
        message = draw(st.sampled_from(msgs))
        if message.mid not in sent and draw(st.booleans()):
            events.append(SendEvent(message))
            sent.add(message.mid)
        else:
            process = draw(st.sampled_from(PROCESSES))
            events.append(DeliverEvent(process, message))
    return Trace(events)


# ----------------------------------------------------------------------
# Relation invariants
# ----------------------------------------------------------------------
@given(traces())
@settings(max_examples=200, deadline=None)
def test_safety_variants_are_prefixes(trace):
    for variant in Safety().variants(trace):
        assert variant.events == trace.events[: len(variant)]


@given(traces())
@settings(max_examples=200, deadline=None)
def test_swap_relations_preserve_multiset(trace):
    for meta in (Asynchrony(), Delayable()):
        for variant in meta.variants(trace):
            assert sorted(map(repr, variant)) == sorted(map(repr, trace))


@given(traces())
@settings(max_examples=200, deadline=None)
def test_asynchrony_preserves_per_process_order(trace):
    def projection(t, p):
        out = []
        for e in t:
            proc = e.msg.sender if isinstance(e, SendEvent) else e.process
            if proc == p:
                out.append(repr(e))
        return out

    for variant in Asynchrony().variants(trace):
        for process in PROCESSES:
            assert projection(variant, process) == projection(trace, process)


@given(traces())
@settings(max_examples=200, deadline=None)
def test_memoryless_erases_completely(trace):
    mids_before = set(trace.messages())
    for variant in Memoryless(erase_pairs=False).variants(trace):
        erased = mids_before - set(variant.messages())
        # Exactly the erased messages' events are gone, if the message
        # had any events at all (it always does: it came from messages()).
        assert len(erased) == 1
        gone = erased.pop()
        assert all(e.mid != gone for e in variant)


@given(traces())
@settings(max_examples=200, deadline=None)
def test_send_enabled_appends_only(trace):
    for variant in SendEnabled().variants(trace):
        assert variant.events[: len(trace)] == trace.events
        assert isinstance(variant.events[-1], SendEvent)


# ----------------------------------------------------------------------
# Randomized preservation checks (✓ cells of Table 2, wider universes)
# ----------------------------------------------------------------------
@given(st.randoms(use_true_random=False))
@settings(max_examples=100, deadline=None)
def test_total_order_preserved_by_unary_relations(rng):
    trace = random_total_order_execution(rng, PROCESSES, 4, partial_suffix=True)
    prop = TotalOrder()
    assert prop.holds(trace)
    for meta in (Safety(), Asynchrony(), Delayable(), SendEnabled(), Memoryless()):
        for variant in meta.variants(trace):
            assert prop.holds(variant), (meta.name, variant)


@given(st.randoms(use_true_random=False))
@settings(max_examples=100, deadline=None)
def test_priority_preserved_by_all_but_asynchrony(rng):
    trace = random_master_first_execution(rng, PROCESSES, 0, 4)
    prop = PrioritizedDelivery(master=0)
    for meta in (Safety(), Delayable(), SendEnabled(), Memoryless()):
        for variant in meta.variants(trace):
            assert prop.holds(variant), (meta.name, variant)


@given(st.randoms(use_true_random=False))
@settings(max_examples=100, deadline=None)
def test_amoeba_preserved_by_safety_asynchrony_memoryless(rng):
    trace = random_amoeba_execution(rng, PROCESSES, 12)
    prop = Amoeba()
    for meta in (Safety(), Asynchrony(), Memoryless()):
        for variant in meta.variants(trace):
            assert prop.holds(variant), (meta.name, variant)


@given(st.randoms(use_true_random=False))
@settings(max_examples=50, deadline=None)
def test_vs_preserved_by_safety_and_asynchrony(rng):
    trace = random_vs_execution(rng, PROCESSES, 3, 2)
    prop = VirtualSynchrony()
    for meta in (Safety(), Asynchrony(), Delayable(), SendEnabled()):
        for variant in meta.variants(trace):
            assert prop.holds(variant), (meta.name, variant)


@given(traces(shared_bodies=True))
@settings(max_examples=200, deadline=None)
def test_noreplay_preserved_by_unary_relations(trace):
    prop = NoReplay()
    if not prop.holds(trace):
        return
    for meta in (Safety(), Asynchrony(), Delayable(), SendEnabled(), Memoryless()):
        for variant in meta.variants(trace):
            assert prop.holds(variant), (meta.name, variant)


@given(traces())
@settings(max_examples=200, deadline=None)
def test_integrity_and_confidentiality_preserved_by_everything_unary(trace):
    for prop in (Integrity(trusted={0, 1}), Confidentiality(trusted={0, 1})):
        if not prop.holds(trace):
            continue
        for meta in (
            Safety(),
            Asynchrony(),
            Delayable(),
            SendEnabled(processes=[0, 1]),
            Memoryless(),
        ):
            for variant in meta.variants(trace):
                assert prop.holds(variant), (prop.name, meta.name, variant)


@given(st.randoms(use_true_random=False), st.randoms(use_true_random=False))
@settings(max_examples=50, deadline=None)
def test_total_order_composable_randomized(rng1, rng2):
    t1 = random_total_order_execution(rng1, PROCESSES, 3)
    t2 = random_total_order_execution(rng2, PROCESSES, 3)
    # Remap t2's message ids so the traces are disjoint.
    remapped = []
    mapping = {}
    for event in t2:
        m = event.msg
        if m.mid not in mapping:
            mapping[m.mid] = Message(
                sender=m.sender, mid=(m.sender, m.mid[1] + 1000), body=m.body,
                body_size=1,
            )
        m2 = mapping[m.mid]
        if isinstance(event, SendEvent):
            remapped.append(SendEvent(m2))
        else:
            remapped.append(DeliverEvent(event.process, m2))
    t2b = Trace(remapped)
    assert not t1.shares_messages_with(t2b)
    assert TotalOrder().holds(t1.concat(t2b))
