"""Unit tests for the live-execution trace recorder."""

import pytest

from helpers import ptp_group
from repro.errors import TraceError
from repro.protocols.sequencer import SequencerLayer
from repro.traces.events import DeliverEvent, SendEvent
from repro.traces.properties import Reliability, TotalOrder
from repro.traces.recorder import TraceRecorder


def recorded_group(n, layers):
    sim, stacks, log = ptp_group(n, layers)
    recorder = TraceRecorder(sim)
    recorder.attach_all(stacks)
    return sim, stacks, recorder


def test_records_sends_and_delivers():
    sim, stacks, recorder = recorded_group(2, lambda r: [])
    stacks[0].cast("m", 16)
    sim.run()
    trace = recorder.trace()
    assert len(trace.sends()) == 1
    assert len(trace.delivers()) == 2  # both members (loopback included)


def test_events_in_chronological_order():
    sim, stacks, recorder = recorded_group(3, lambda r: [])
    stacks[0].cast("a", 16)
    sim.run()
    stacks[1].cast("b", 16)
    sim.run()
    times = [t for t, __ in recorder.timed_events()]
    assert times == sorted(times)


def test_send_precedes_own_deliveries():
    sim, stacks, recorder = recorded_group(2, lambda r: [])
    stacks[0].cast("m", 16)
    sim.run()
    trace = recorder.trace()
    assert isinstance(trace[0], SendEvent)
    assert all(isinstance(e, DeliverEvent) for e in trace.events[1:])


def test_recorded_sequencer_trace_is_totally_ordered():
    sim, stacks, recorder = recorded_group(3, lambda r: [SequencerLayer()])
    for i in range(9):
        stacks[i % 3].cast(i, 16)
    sim.run()
    trace = recorder.trace()
    assert TotalOrder().holds(trace)
    assert Reliability(receivers={0, 1, 2}).holds(trace)


def test_manual_injection():
    sim, stacks, recorder = recorded_group(2, lambda r: [])
    stacks[0].cast("m", 16)
    sim.run()
    msg = recorder.trace().messages()[(0, 0)]
    recorder.record_deliver(99, msg)
    assert len(recorder.trace().delivers_at(99)) == 1


def test_freeze_rejects_later_events():
    sim, stacks, recorder = recorded_group(2, lambda r: [])
    stacks[0].cast("m", 16)
    sim.run()
    trace = recorder.freeze()
    assert recorder.frozen
    assert len(trace) == 3  # one send, two delivers
    msg = trace.messages()[(0, 0)]
    with pytest.raises(TraceError):
        recorder.record_deliver(99, msg)
    with pytest.raises(TraceError):
        stacks[1].cast("late", 16)
    # The frozen trace is unchanged and freeze is idempotent.
    assert recorder.trace() is trace
    assert recorder.freeze() is trace


def test_clear_unfreezes():
    sim, stacks, recorder = recorded_group(2, lambda r: [])
    stacks[0].cast("m", 16)
    sim.run()
    recorder.freeze()
    recorder.clear()
    assert not recorder.frozen
    stacks[0].cast("again", 16)
    sim.run()
    assert recorder.event_count() == 3


def test_clear():
    sim, stacks, recorder = recorded_group(2, lambda r: [])
    stacks[0].cast("m", 16)
    sim.run()
    assert recorder.event_count() > 0
    recorder.clear()
    assert recorder.event_count() == 0
    assert len(recorder.trace()) == 0
