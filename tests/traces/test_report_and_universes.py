"""Unit tests for Table 2 rendering and the canonical universes."""

import pytest

from repro.errors import VerificationError
from repro.traces.meta import ALL_META_PROPERTIES, Memoryless, Safety
from repro.traces.report import PAPER_TABLE_2, matrix_agreement, render_matrix
from repro.traces.universes import table2_universes
from repro.traces.verify import MatrixCell, Verdict, compute_matrix


def test_paper_table_pins_25_cells():
    assert len(PAPER_TABLE_2) == 25
    # Spot-check the prose-pinned negatives.
    assert PAPER_TABLE_2[("Reliability", "Safety")] is False
    assert PAPER_TABLE_2[("Prioritized Delivery", "Asynchrony")] is False
    assert PAPER_TABLE_2[("Amoeba", "Delayable")] is False
    assert PAPER_TABLE_2[("Virtual Synchrony", "Memoryless")] is False
    assert PAPER_TABLE_2[("No Replay", "Composable")] is False
    assert PAPER_TABLE_2[("No Replay", "Memoryless")] is True


def test_universes_cover_all_table_rows():
    rows = [prop.name for prop, __ in table2_universes("fast")]
    assert rows == [
        "Total Order",
        "Integrity",
        "Confidentiality",
        "Reliability",
        "Prioritized Delivery",
        "Amoeba",
        "Virtual Synchrony",
        "No Replay",
    ]


def test_unknown_depth_rejected():
    with pytest.raises(VerificationError):
        table2_universes("extreme")


def test_universes_nonempty_and_contain_property_traces():
    for prop, universe in table2_universes("fast"):
        holding = sum(1 for t in universe if prop.holds(t))
        assert holding > 0, f"no {prop.name} traces in its universe"


def make_cell(prop, meta, preserved, paper=None):
    return MatrixCell(
        prop, meta, Verdict(preserved, None, 1, 1), paper_says=paper
    )


class TestRendering:
    def test_render_contains_all_rows_and_columns(self):
        cells = [
            make_cell("Total Order", "Safety", True, paper=True),
            make_cell("Total Order", "Memoryless", True),
        ]
        text = render_matrix(cells)
        assert "Total Order" in text
        assert "Safety" in text and "Memoryless" in text
        assert "yes*" in text  # pinned + agree

    def test_disagreement_marked(self):
        cells = [make_cell("Reliability", "Safety", True, paper=False)]
        text = render_matrix(cells)
        assert "yes!" in text

    def test_refuted_marked(self):
        cells = [make_cell("Reliability", "Safety", False, paper=False)]
        assert "NO*" in render_matrix(cells)

    def test_agreement_counts(self):
        cells = [
            make_cell("A", "Safety", True, paper=True),
            make_cell("A", "Memoryless", False, paper=True),
            make_cell("A", "Composable", True),
        ]
        assert matrix_agreement(cells) == (1, 2)


def test_fast_matrix_agrees_with_paper_on_negatives():
    """The ✗ cells all carry small witnesses: even the fast universes
    refute them.  (The full 25/25 agreement run is bench_table2.)"""
    universes = dict(
        (prop.name, (prop, traces)) for prop, traces in table2_universes("fast")
    )
    negatives = [
        ("Reliability", Safety()),
        ("Virtual Synchrony", Memoryless()),
    ]
    for prop_name, meta in negatives:
        prop, universe = universes[prop_name]
        cells = compute_matrix([(prop, universe)], [meta], PAPER_TABLE_2)
        assert cells[0].verdict.preserved is False
        assert cells[0].agrees_with_paper
