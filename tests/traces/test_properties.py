"""Experiment T1: every Table 1 property, with a witness trace where it
holds and a violation trace where it does not."""

import pytest

from repro.stack.membership import View
from repro.stack.message import Message
from repro.traces.events import deliver, msg, send
from repro.traces.properties import (
    Amoeba,
    Confidentiality,
    FifoOrder,
    Integrity,
    NoReplay,
    PrioritizedDelivery,
    Reliability,
    TotalOrder,
    VirtualSynchrony,
)
from repro.traces.trace import Trace


def view_msg(view_id, members):
    view = View(view_id, tuple(members))
    return Message(
        sender=min(members), mid=(min(members), -view_id - 1), body=view,
        body_size=1,
    )


class TestReliability:
    prop = Reliability(receivers={0, 1})

    def test_complete_delivery_holds(self):
        m = msg(0, 0)
        assert self.prop.holds(Trace([send(m), deliver(0, m), deliver(1, m)]))

    def test_missing_receiver_violates(self):
        m = msg(0, 0)
        explanation = self.prop.explain(Trace([send(m), deliver(0, m)]))
        assert explanation is not None and "1" in explanation

    def test_unsent_deliveries_unconstrained(self):
        assert self.prop.holds(Trace([deliver(0, msg(1, 0))]))

    def test_empty_trace_holds(self):
        assert self.prop.holds(Trace())


class TestTotalOrder:
    prop = TotalOrder()

    def test_agreeing_orders_hold(self):
        m1, m2 = msg(0, 0), msg(0, 1)
        trace = Trace(
            [deliver(0, m1), deliver(1, m1), deliver(0, m2), deliver(1, m2)]
        )
        assert self.prop.holds(trace)

    def test_disagreeing_orders_violate(self):
        m1, m2 = msg(0, 0), msg(0, 1)
        trace = Trace(
            [deliver(0, m1), deliver(0, m2), deliver(1, m2), deliver(1, m1)]
        )
        assert not self.prop.holds(trace)

    def test_disjoint_deliveries_hold(self):
        m1, m2 = msg(0, 0), msg(0, 1)
        assert self.prop.holds(Trace([deliver(0, m1), deliver(1, m2)]))

    def test_partial_overlap_ok(self):
        """q stopped early: the common prefix agrees."""
        m1, m2 = msg(0, 0), msg(0, 1)
        trace = Trace([deliver(0, m1), deliver(0, m2), deliver(1, m1)])
        assert self.prop.holds(trace)


class TestFifoOrder:
    prop = FifoOrder()

    def test_in_order_holds(self):
        m1, m2 = msg(0, 0), msg(0, 1)
        trace = Trace([send(m1), send(m2), deliver(1, m1), deliver(1, m2)])
        assert self.prop.holds(trace)

    def test_reversed_violates(self):
        m1, m2 = msg(0, 0), msg(0, 1)
        trace = Trace([send(m1), send(m2), deliver(1, m2), deliver(1, m1)])
        assert not self.prop.holds(trace)

    def test_different_senders_not_constrained(self):
        m1, m2 = msg(0, 0), msg(1, 0)
        trace = Trace([send(m1), send(m2), deliver(2, m2), deliver(2, m1)])
        assert self.prop.holds(trace)


class TestIntegrity:
    prop = Integrity(trusted={0, 1})

    def test_trusted_sender_holds(self):
        m = msg(0, 0)
        assert self.prop.holds(Trace([send(m), deliver(1, m)]))

    def test_untrusted_sender_violates(self):
        forged = msg(7, 0)
        assert not self.prop.holds(Trace([deliver(1, forged)]))

    def test_untrusted_send_without_delivery_ok(self):
        assert self.prop.holds(Trace([send(msg(7, 0))]))


class TestConfidentiality:
    prop = Confidentiality(trusted={0, 1})

    def test_trusted_to_trusted_holds(self):
        m = msg(0, 0)
        assert self.prop.holds(Trace([send(m), deliver(1, m)]))

    def test_trusted_to_untrusted_violates(self):
        m = msg(0, 0)
        assert not self.prop.holds(Trace([send(m), deliver(9, m)]))

    def test_untrusted_to_untrusted_ok(self):
        m = msg(8, 0)
        assert self.prop.holds(Trace([send(m), deliver(9, m)]))


class TestNoReplay:
    prop = NoReplay()

    def test_distinct_bodies_hold(self):
        m1, m2 = msg(0, 0, "a"), msg(0, 1, "b")
        assert self.prop.holds(Trace([deliver(1, m1), deliver(1, m2)]))

    def test_same_message_twice_violates(self):
        m = msg(0, 0, "a")
        assert not self.prop.holds(Trace([deliver(1, m), deliver(1, m)]))

    def test_same_body_different_message_violates(self):
        """The subtlety section 6.2 turns on: bodies, not ids."""
        m1, m2 = msg(0, 0, "dup"), msg(1, 0, "dup")
        assert not self.prop.holds(Trace([deliver(1, m1), deliver(1, m2)]))

    def test_same_body_different_processes_ok(self):
        m1, m2 = msg(0, 0, "dup"), msg(1, 0, "dup")
        assert self.prop.holds(Trace([deliver(1, m1), deliver(2, m2)]))


class TestPrioritizedDelivery:
    prop = PrioritizedDelivery(master=0)

    def test_master_first_holds(self):
        m = msg(1, 0)
        assert self.prop.holds(Trace([deliver(0, m), deliver(1, m)]))

    def test_non_master_first_violates(self):
        m = msg(1, 0)
        assert not self.prop.holds(Trace([deliver(1, m), deliver(0, m)]))

    def test_master_only_ok(self):
        m = msg(1, 0)
        assert self.prop.holds(Trace([deliver(0, m)]))

    def test_never_reaches_master_violates(self):
        m = msg(1, 0)
        assert not self.prop.holds(Trace([deliver(2, m)]))


class TestAmoeba:
    prop = Amoeba()

    def test_await_then_send_holds(self):
        m1, m2 = msg(0, 0), msg(0, 1)
        trace = Trace([send(m1), deliver(0, m1), send(m2)])
        assert self.prop.holds(trace)

    def test_send_while_outstanding_violates(self):
        m1, m2 = msg(0, 0), msg(0, 1)
        assert not self.prop.holds(Trace([send(m1), send(m2)]))

    def test_other_process_deliveries_do_not_release(self):
        m1, m2 = msg(0, 0), msg(0, 1)
        trace = Trace([send(m1), deliver(1, m1), send(m2)])
        assert not self.prop.holds(trace)

    def test_processes_independent(self):
        m1, m2 = msg(0, 0), msg(1, 0)
        assert self.prop.holds(Trace([send(m1), send(m2)]))

    def test_outstanding_at_end_is_fine(self):
        assert self.prop.holds(Trace([send(msg(0, 0))]))


class TestVirtualSynchrony:
    prop = VirtualSynchrony()

    def test_view_then_member_data_holds(self):
        w = view_msg(1, [0, 1])
        m = msg(1, 0)
        trace = Trace(
            [deliver(0, w), deliver(1, w), send(m), deliver(0, m), deliver(1, m)]
        )
        assert self.prop.holds(trace)

    def test_data_without_view_violates(self):
        m = msg(1, 0)
        assert not self.prop.holds(Trace([send(m), deliver(0, m)]))

    def test_sender_outside_view_violates(self):
        w = view_msg(1, [0, 1])
        outsider = msg(5, 0)
        trace = Trace([deliver(0, w), deliver(0, outsider)])
        assert not self.prop.holds(trace)

    def test_view_id_regression_violates(self):
        w1, w0 = view_msg(2, [0, 1]), view_msg(1, [0, 1])
        trace = Trace([deliver(0, w1), deliver(0, w0)])
        assert not self.prop.holds(trace)

    def test_equal_view_id_violates(self):
        w_a = view_msg(1, [0, 1])
        w_b = Message(sender=1, mid=(1, -99), body=View(1, (0, 1)), body_size=1)
        assert not self.prop.holds(Trace([deliver(0, w_a), deliver(0, w_b)]))

    def test_set_agreement_between_views(self):
        w1, w2 = view_msg(1, [0, 1]), view_msg(2, [0, 1])
        m = msg(0, 0)
        good = Trace([
            deliver(0, w1), deliver(1, w1),
            deliver(0, m), deliver(1, m),
            deliver(0, w2), deliver(1, w2),
        ])
        assert self.prop.holds(good)
        bad = Trace([
            deliver(0, w1), deliver(1, w1),
            deliver(0, m),  # only process 0 got m in the interval
            deliver(0, w2), deliver(1, w2),
        ])
        assert not self.prop.holds(bad)

    def test_incomplete_interval_not_compared(self):
        """Process 1 has not reached view 2 yet: no violation."""
        w1, w2 = view_msg(1, [0, 1]), view_msg(2, [0, 1])
        m = msg(0, 0)
        trace = Trace([
            deliver(0, w1), deliver(1, w1),
            deliver(0, m),
            deliver(0, w2),
        ])
        assert self.prop.holds(trace)

    def test_explanations_are_informative(self):
        m = msg(1, 0)
        explanation = self.prop.explain(Trace([deliver(0, m)]))
        assert "no view" in explanation
