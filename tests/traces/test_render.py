"""Unit tests for the ASCII trace renderer."""

from repro.stack.membership import View
from repro.stack.message import Message
from repro.traces.events import deliver, msg, send
from repro.traces.render import render_trace
from repro.traces.trace import Trace


def test_rows_and_marks():
    m0 = msg(0, 0, "hello")
    trace = Trace([send(m0), deliver(1, m0)])
    text = render_trace(trace)
    lines = text.splitlines()
    assert lines[0].startswith("p0")
    assert "S0" in lines[0]
    assert "D0" in lines[1]


def test_alignment_with_gaps():
    m0, m1 = msg(0, 0), msg(1, 0)
    trace = Trace([send(m0), send(m1), deliver(0, m1), deliver(1, m0)])
    text = render_trace(trace, legend=False)
    p0, p1 = text.splitlines()
    # Events occupy distinct columns; non-participating cells are dots.
    assert p0.count(".") >= 1 and p1.count(".") >= 1


def test_legend_contents():
    m0 = msg(3, 7, "payload")
    trace = Trace([send(m0)])
    text = render_trace(trace)
    assert "#0 = (3, 7) from 3 body='payload'" in text


def test_view_messages_marked():
    view = View(2, (0, 1))
    vmsg = Message(sender=0, mid=(0, -3), body=view, body_size=1)
    trace = Trace([deliver(0, vmsg), deliver(1, vmsg)])
    text = render_trace(trace)
    assert "V2" in text
    assert "view 2" in text


def test_elision():
    events = []
    for i in range(30):
        events.append(send(msg(0, i)))
    trace = Trace(events)
    text = render_trace(trace, max_events=10, legend=False)
    assert "20 more events elided" in text


def test_process_restriction():
    m0 = msg(0, 0)
    trace = Trace([send(m0), deliver(1, m0), deliver(2, m0)])
    text = render_trace(trace, processes=[2], legend=False)
    assert text.splitlines()[0].startswith("p2")
    assert len([l for l in text.splitlines() if l.startswith("p")]) == 1


def test_empty_trace():
    assert render_trace(Trace()) == ""
