"""Unit tests for trace events and the Trace container."""

import pytest

from repro.errors import TraceError
from repro.traces.events import DeliverEvent, SendEvent, deliver, msg, send
from repro.traces.trace import Trace


def simple_trace():
    m1, m2 = msg(0, 0, "a"), msg(1, 0, "b")
    return Trace([send(m1), deliver(0, m1), send(m2), deliver(1, m1)]), m1, m2


class TestEvents:
    def test_send_process_is_sender(self):
        m = msg(3, 0)
        assert send(m).process == 3

    def test_event_equality(self):
        m = msg(0, 0)
        assert send(m) == send(m)
        assert deliver(1, m) == deliver(1, m)
        assert deliver(1, m) != deliver(2, m)
        assert hash(send(m)) != hash(deliver(0, m))

    def test_send_deliver_never_equal(self):
        m = msg(0, 0)
        assert send(m) != deliver(0, m)


class TestValidity:
    def test_duplicate_send_rejected(self):
        m = msg(0, 0)
        with pytest.raises(TraceError):
            Trace([send(m), send(m)])

    def test_deliver_without_send_is_valid(self):
        """Spurious deliveries are representable (Integrity polices them)."""
        Trace([deliver(0, msg(1, 0))])

    def test_repeated_delivery_is_valid(self):
        m = msg(0, 0)
        Trace([deliver(1, m), deliver(1, m)])

    def test_non_event_rejected(self):
        with pytest.raises(TraceError):
            Trace(["not an event"])


class TestViews:
    def test_sends_and_delivers(self):
        trace, m1, m2 = simple_trace()
        assert len(trace.sends()) == 2
        assert len(trace.delivers()) == 2
        assert len(trace.delivers_at(0)) == 1

    def test_processes(self):
        trace, m1, m2 = simple_trace()
        assert trace.processes() == {0, 1}

    def test_messages(self):
        trace, m1, m2 = simple_trace()
        assert set(trace.messages()) == {m1.mid, m2.mid}

    def test_sent_mids(self):
        trace, m1, m2 = simple_trace()
        assert trace.sent_mids() == {m1.mid, m2.mid}

    def test_sequence_protocol(self):
        trace, m1, m2 = simple_trace()
        assert len(trace) == 4
        assert trace[0] == send(m1)
        assert list(trace) == list(trace.events)


class TestTransformations:
    def test_prefix(self):
        trace, m1, m2 = simple_trace()
        assert len(trace.prefix(2)) == 2
        assert trace.prefix(0) == Trace()

    def test_prefix_bounds(self):
        trace, __, __unused = simple_trace()
        with pytest.raises(TraceError):
            trace.prefix(99)
        with pytest.raises(TraceError):
            trace.prefix(-1)

    def test_swap(self):
        trace, m1, m2 = simple_trace()
        swapped = trace.swap(0)
        assert swapped[0] == deliver(0, m1)
        assert swapped[1] == send(m1)
        assert trace[0] == send(m1)  # original untouched

    def test_swap_bounds(self):
        trace, __, __unused = simple_trace()
        with pytest.raises(TraceError):
            trace.swap(3)

    def test_append(self):
        trace, m1, m2 = simple_trace()
        m3 = msg(0, 1)
        extended = trace.append(send(m3))
        assert len(extended) == 5

    def test_append_duplicate_send_rejected(self):
        trace, m1, __ = simple_trace()
        with pytest.raises(TraceError):
            trace.append(send(m1))

    def test_concat(self):
        trace, m1, m2 = simple_trace()
        other = Trace([send(msg(2, 0))])
        assert len(trace.concat(other)) == 5

    def test_without_messages(self):
        trace, m1, m2 = simple_trace()
        erased = trace.without_messages([m1.mid])
        assert len(erased) == 1
        assert erased[0] == send(m2)

    def test_shares_messages_with(self):
        trace, m1, m2 = simple_trace()
        assert trace.shares_messages_with(Trace([deliver(5, m1)]))
        assert not trace.shares_messages_with(Trace([send(msg(9, 9))]))

    def test_equality_and_hash(self):
        a, __, __unused = simple_trace()
        b, __, __unused2 = simple_trace()
        assert a == b
        assert hash(a) == hash(b)
