"""Unit tests for bounded-exhaustive verification (the Table 2 engine)."""

import pytest

from repro.errors import VerificationError
from repro.stack.message import Message
from repro.traces.events import deliver, msg, send
from repro.traces.meta import Asynchrony, Composable, Safety, SendEnabled
from repro.traces.properties import (
    Amoeba,
    NoReplay,
    PrioritizedDelivery,
    Reliability,
    TotalOrder,
)
from repro.traces.trace import Trace
from repro.traces.verify import (
    check_composability,
    check_preservation,
    compute_matrix,
    enumerate_traces,
)


def messages(n, senders=(0, 1)):
    return [
        Message(sender=senders[i % len(senders)], mid=(senders[i % len(senders)], i),
                body=f"b{i}", body_size=1)
        for i in range(n)
    ]


class TestEnumeration:
    def test_counts_match_combinatorics(self):
        # 1 message, 1 process: alphabet = {S, D}; valid traces with no
        # duplicate send, lengths 0..2:
        # len0: 1; len1: S, D; len2: SD, DS, DD  -> 6 total
        traces = list(enumerate_traces(messages(1), [0], 2))
        assert len(traces) == 6

    def test_no_duplicate_sends_ever(self):
        for trace in enumerate_traces(messages(2), [0, 1], 4):
            mids = [e.mid for e in trace.sends()]
            assert len(mids) == len(set(mids))

    def test_causal_restriction(self):
        traces = list(
            enumerate_traces(messages(1), [0], 2, require_send_before_deliver=True)
        )
        # len0: 1; len1: S; len2: SD  -> 3
        assert len(traces) == 3

    def test_empty_first(self):
        first = next(iter(enumerate_traces(messages(1), [0], 1)))
        assert first == Trace()

    def test_negative_bound_rejected(self):
        with pytest.raises(VerificationError):
            list(enumerate_traces(messages(1), [0], -1))


class TestCheckPreservation:
    def test_reliability_not_safe(self):
        """The paper's own section 5.1 example, found mechanically."""
        universe = list(enumerate_traces(messages(1), [0, 1], 3))
        verdict = check_preservation(
            Reliability(receivers={0, 1}), Safety(), universe
        )
        assert not verdict.preserved
        ce = verdict.counterexample
        assert Reliability(receivers={0, 1}).holds(ce.below)
        assert not Reliability(receivers={0, 1}).holds(ce.above)

    def test_total_order_is_safe(self):
        universe = list(enumerate_traces(messages(2), [0, 1], 4))
        verdict = check_preservation(TotalOrder(), Safety(), universe)
        assert verdict.preserved
        assert verdict.traces_checked > 0
        assert verdict.variants_checked > 0

    def test_priority_not_asynchronous(self):
        universe = list(enumerate_traces(messages(1), [0, 1], 2))
        verdict = check_preservation(
            PrioritizedDelivery(master=0), Asynchrony(), universe
        )
        assert not verdict.preserved

    def test_amoeba_not_send_enabled(self):
        same_sender = messages(2, senders=(0,))
        universe = list(enumerate_traces(same_sender, [0], 2))
        verdict = check_preservation(Amoeba(), SendEnabled(), universe)
        assert not verdict.preserved

    def test_composable_rejected_here(self):
        with pytest.raises(VerificationError):
            check_preservation(TotalOrder(), Composable(), [])

    def test_stop_at_first_false_counts_everything(self):
        universe = list(enumerate_traces(messages(1), [0, 1], 3))
        fast = check_preservation(
            Reliability(receivers={0, 1}), Safety(), universe
        )
        slow = check_preservation(
            Reliability(receivers={0, 1}), Safety(), universe,
            stop_at_first=False,
        )
        assert slow.variants_checked >= fast.variants_checked


class TestCheckComposability:
    def test_no_replay_not_composable(self):
        m1 = Message(sender=0, mid=(0, 0), body="dup", body_size=1)
        m2 = Message(sender=1, mid=(1, 0), body="dup", body_size=1)
        t1 = Trace([deliver(0, m1)])
        t2 = Trace([deliver(0, m2)])
        verdict = check_composability(NoReplay(), [t1, t2])
        assert not verdict.preserved
        assert verdict.counterexample.second_below is not None

    def test_total_order_composable(self):
        universe = list(enumerate_traces(messages(2), [0, 1], 3))
        verdict = check_composability(TotalOrder(), universe[:200])
        assert verdict.preserved

    def test_shared_messages_skipped(self):
        m = msg(0, 0)
        t = Trace([send(m), deliver(0, m)])
        verdict = check_composability(NoReplay(), [t])
        # t with itself shares messages -> no applicable pair.
        assert verdict.variants_checked == 0


class TestComputeMatrix:
    def test_small_matrix_shape_and_agreement(self):
        universe = list(enumerate_traces(messages(1), [0, 1], 3))
        cells = compute_matrix(
            [(Reliability(receivers={0, 1}), universe)],
            [Safety(), Asynchrony(), Composable()],
            paper_table={("Reliability", "Safety"): False},
        )
        assert len(cells) == 3
        by_meta = {c.meta_name: c for c in cells}
        assert not by_meta["Safety"].verdict.preserved
        assert by_meta["Safety"].agrees_with_paper is True
        assert by_meta["Asynchrony"].paper_says is None
        assert by_meta["Asynchrony"].agrees_with_paper is None
