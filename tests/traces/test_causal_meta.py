"""Meta-property audit of Causal Order — the paper's recipe applied to a
property it never analyzed.

Result: Causal Order satisfies all six meta-properties (within the
checked universes), so the §6.3 theorem predicts the SP preserves it;
the live confirmation is in tests/integration (switching between two
causal protocols)."""

import random

import pytest

from helpers import switch_group
from repro.core.switchable import ProtocolSpec
from repro.protocols.causal import CausalOrderLayer
from repro.stack.message import Message
from repro.traces.events import deliver, msg, send
from repro.traces.meta import ALL_META_PROPERTIES, Composable
from repro.traces.properties import CausalOrder
from repro.traces.recorder import TraceRecorder
from repro.traces.trace import Trace
from repro.traces.verify import (
    check_composability,
    check_preservation,
    enumerate_traces,
)


def universe():
    messages = [
        Message(sender=0, mid=(0, 0), body="a", body_size=1),
        Message(sender=0, mid=(0, 1), body="b", body_size=1),
        Message(sender=1, mid=(1, 0), body="c", body_size=1),
    ]
    return list(enumerate_traces(messages, [0, 1], 4))


class TestPredicate:
    def test_causal_chain_respected(self):
        m1, m2 = msg(0, 0), msg(1, 0)
        # 1 delivered m1 before sending m2 -> m1 happens-before m2
        good = Trace([
            send(m1), deliver(1, m1), send(m2),
            deliver(2, m1), deliver(2, m2),
        ])
        assert CausalOrder().holds(good)
        bad = Trace([
            send(m1), deliver(1, m1), send(m2),
            deliver(2, m2), deliver(2, m1),
        ])
        assert not CausalOrder().holds(bad)

    def test_same_sender_order(self):
        m1, m2 = msg(0, 0), msg(0, 1)
        bad = Trace([send(m1), send(m2), deliver(1, m2), deliver(1, m1)])
        assert not CausalOrder().holds(bad)

    def test_concurrent_messages_unconstrained(self):
        m1, m2 = msg(0, 0), msg(1, 0)
        trace = Trace([send(m1), send(m2), deliver(2, m2), deliver(2, m1)])
        assert CausalOrder().holds(trace)

    def test_transitivity(self):
        m1, m2, m3 = msg(0, 0), msg(1, 0), msg(2, 0)
        # m1 -> m2 (via delivery at 1), m2 -> m3 (via delivery at 2)
        bad = Trace([
            send(m1), deliver(1, m1), send(m2), deliver(2, m2), send(m3),
            deliver(3, m3), deliver(3, m1),
        ])
        assert not CausalOrder().holds(bad)


def test_causal_order_satisfies_all_six_meta_properties():
    prop = CausalOrder()
    traces = universe()
    for meta in ALL_META_PROPERTIES:
        if isinstance(meta, Composable):
            verdict = check_composability(prop, traces, max_pairs=500_000)
        else:
            verdict = check_preservation(prop, meta, traces)
        assert verdict.preserved, (
            f"Causal Order unexpectedly fails {meta.name}: "
            f"{verdict.counterexample}"
        )


def test_sp_preserves_causal_order_live():
    """The theorem's prediction, confirmed on the wire: switching between
    two causal-order protocols preserves causal order."""
    specs = [
        ProtocolSpec("cA", lambda r: [CausalOrderLayer()]),
        ProtocolSpec("cB", lambda r: [CausalOrderLayer()]),
    ]
    sim, stacks, log = switch_group(4, specs, "cA", "broadcast", seed=61)
    recorder = TraceRecorder(sim)
    recorder.attach_all(stacks)
    rng = random.Random(4)

    # Causally chained chatter: whoever delivers may respond.
    def respond(rank):
        def on_deliver(m):
            if isinstance(m.body, int) and m.body < 5 and rng.random() < 0.4:
                stacks[rank].cast(m.body + 1, 16)
        return on_deliver

    for rank, stack in stacks.items():
        stack.on_deliver(respond(rank))
    for i in range(8):
        sim.schedule_at(0.003 * (i + 1), lambda i=i: stacks[i % 4].cast(0, 16))
    sim.schedule_at(0.015, lambda: stacks[2].request_switch("cB"))
    sim.run_until(3.0)
    assert all(s.current_protocol == "cB" for s in stacks.values())
    assert CausalOrder().holds(recorder.trace())
