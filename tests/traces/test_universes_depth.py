"""Unit tests for universe depth presets and composite_variants."""

import random

from repro.traces.meta import ALL_META_PROPERTIES
from repro.traces.universes import table2_universes
from repro.traces.verify import composite_variants
from repro.traces.generators import random_reliable_execution


def test_thorough_deepens_only_small_universes():
    fast = {p.name: len(u) for p, u in table2_universes("fast")}
    thorough = {p.name: len(u) for p, u in table2_universes("thorough")}
    # The 4-event universes grow...
    assert thorough["Integrity"] > fast["Integrity"]
    assert thorough["Amoeba"] > fast["Amoeba"]
    # ...the already-large 5-event ones stay put (Composable pair-space).
    assert thorough["Total Order"] == fast["Total Order"]
    assert thorough["Reliability"] == fast["Reliability"]


def test_composite_variants_sample_count_and_validity():
    rng = random.Random(0)
    trace = random_reliable_execution(rng, [0, 1], 3)
    variants = list(
        composite_variants(trace, ALL_META_PROPERTIES, rng, steps=4, samples=7)
    )
    assert len(variants) == 7


def test_composite_variants_empty_trace():
    rng = random.Random(0)
    from repro.traces.trace import Trace

    variants = list(
        composite_variants(Trace(), ALL_META_PROPERTIES, rng, steps=3, samples=2)
    )
    # From the empty trace only Send Enabled can step; walks still finish.
    assert len(variants) == 2
