"""The §6.3 theorem at the calculus level: properties satisfying all six
meta-properties survive arbitrary *compositions* of the relations — the
shape of transformation the switching protocol actually applies."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.traces.generators import (
    random_reliable_execution,
    random_total_order_execution,
)
from repro.traces.meta import ALL_META_PROPERTIES
from repro.traces.properties import (
    CausalOrder,
    Confidentiality,
    Integrity,
    TotalOrder,
)
from repro.traces.verify import composite_variants


ALL_SIX_PROPERTIES = [
    TotalOrder(),
    Integrity(trusted={0, 1, 2}),
    Confidentiality(trusted={0, 1, 2}),
    CausalOrder(),
]


@given(st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_all_six_properties_survive_composite_walks(rng):
    trace = random_total_order_execution(rng, [0, 1, 2], 4)
    for prop in ALL_SIX_PROPERTIES:
        if not prop.holds(trace):
            # e.g. Causal Order: a random global order need not respect
            # the (shuffled) send order; Equation (1) is vacuous then.
            continue
        for variant in composite_variants(
            trace, ALL_META_PROPERTIES, rng, steps=6, samples=5
        ):
            assert prop.holds(variant), (prop.name, variant)


@given(st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_composite_walks_from_reliable_executions(rng):
    trace = random_reliable_execution(rng, [0, 1, 2], 4)
    # Reliability itself fails Safety, but the all-six properties hold of
    # these traces too and must survive the walk.
    for prop in (TotalOrder(), CausalOrder()):
        if not prop.holds(trace):
            continue
        for variant in composite_variants(
            trace, ALL_META_PROPERTIES, rng, steps=8, samples=4
        ):
            assert prop.holds(variant), (prop.name, variant)


@given(st.randoms(use_true_random=False))
@settings(max_examples=20, deadline=None)
def test_composite_variants_are_valid_traces(rng):
    trace = random_total_order_execution(rng, [0, 1], 3)
    count = 0
    for variant in composite_variants(
        trace, ALL_META_PROPERTIES, rng, steps=5, samples=3
    ):
        count += 1  # Trace construction validates; arriving here suffices
    assert count == 3
