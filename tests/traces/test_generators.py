"""Generated executions satisfy the properties they are biased towards."""

import random

import pytest

from repro.traces.generators import (
    make_messages,
    random_amoeba_execution,
    random_master_first_execution,
    random_reliable_execution,
    random_total_order_execution,
    random_trace,
    random_vs_execution,
)
from repro.traces.properties import (
    Amoeba,
    PrioritizedDelivery,
    Reliability,
    TotalOrder,
    VirtualSynchrony,
)

SEEDS = range(5)


def test_make_messages_shared_bodies():
    msgs = make_messages([0, 1], 4, distinct_bodies=False)
    assert msgs[0].body == msgs[2].body
    assert len({m.mid for m in msgs}) == 4


@pytest.mark.parametrize("seed", SEEDS)
def test_reliable_executions_are_reliable(seed):
    rng = random.Random(seed)
    trace = random_reliable_execution(rng, [0, 1, 2], 5)
    assert Reliability(receivers={0, 1, 2}).holds(trace)


@pytest.mark.parametrize("seed", SEEDS)
def test_reliable_executions_respect_causality(seed):
    rng = random.Random(seed)
    trace = random_reliable_execution(rng, [0, 1], 4)
    seen_sends = set()
    for event in trace:
        if event.__class__.__name__ == "SendEvent":
            seen_sends.add(event.mid)
        else:
            assert event.mid in seen_sends


@pytest.mark.parametrize("seed", SEEDS)
def test_total_order_executions_are_totally_ordered(seed):
    rng = random.Random(seed)
    trace = random_total_order_execution(rng, [0, 1, 2], 6)
    assert TotalOrder().holds(trace)
    assert Reliability(receivers={0, 1, 2}).holds(trace)


@pytest.mark.parametrize("seed", SEEDS)
def test_partial_total_order_still_ordered(seed):
    rng = random.Random(seed)
    trace = random_total_order_execution(rng, [0, 1], 6, partial_suffix=True)
    assert TotalOrder().holds(trace)


@pytest.mark.parametrize("seed", SEEDS)
def test_master_first_executions(seed):
    rng = random.Random(seed)
    trace = random_master_first_execution(rng, [0, 1, 2], master=0, n_messages=5)
    assert PrioritizedDelivery(master=0).holds(trace)


@pytest.mark.parametrize("seed", SEEDS)
def test_amoeba_executions(seed):
    rng = random.Random(seed)
    trace = random_amoeba_execution(rng, [0, 1], 20)
    assert Amoeba().holds(trace)


@pytest.mark.parametrize("seed", SEEDS)
def test_vs_executions(seed):
    rng = random.Random(seed)
    trace = random_vs_execution(rng, [0, 1, 2], n_views=3, msgs_per_view=3)
    assert VirtualSynchrony().holds(trace)


@pytest.mark.parametrize("seed", SEEDS)
def test_random_trace_is_valid_and_bounded(seed):
    rng = random.Random(seed)
    msgs = make_messages([0, 1], 3)
    trace = random_trace(rng, msgs, [0, 1], 10)
    assert len(trace) <= 10


def test_random_trace_without_spurious_respects_causality():
    rng = random.Random(0)
    msgs = make_messages([0], 2)
    for __ in range(20):
        trace = random_trace(rng, msgs, [0, 1], 8, spurious=False)
        sent = set()
        for event in trace:
            if event.__class__.__name__ == "SendEvent":
                sent.add(event.mid)
            else:
                assert event.mid in sent


def test_generators_are_deterministic_per_seed():
    t1 = random_reliable_execution(random.Random(9), [0, 1], 4)
    t2 = random_reliable_execution(random.Random(9), [0, 1], 4)
    assert t1 == t2
