"""Randomized refutation: the search layer also finds every ✗ cell.

The bounded-exhaustive checker proves the Table 2 refutations within its
universes; these tests show the *randomized* instrument (property-biased
generators + relation steps) independently rediscovers each violation —
evidence that the ✗ cells are robust phenomena, not artifacts of the
hand-picked universes.
"""

import random

from repro.traces.generators import (
    make_messages,
    random_amoeba_execution,
    random_master_first_execution,
    random_reliable_execution,
    random_vs_execution,
)
from repro.traces.meta import (
    Asynchrony,
    Composable,
    Delayable,
    Memoryless,
    Safety,
    SendEnabled,
)
from repro.traces.properties import (
    Amoeba,
    NoReplay,
    PrioritizedDelivery,
    Reliability,
    VirtualSynchrony,
)
from repro.traces.trace import Trace
from repro.traces.events import DeliverEvent


def search(prop, meta, trace_source, attempts=300):
    """Random search for an Equation-(1) counterexample."""
    rng = random.Random(12345)
    for __ in range(attempts):
        below = trace_source(rng)
        if not prop.holds(below):
            continue
        for above in meta.variants(below):
            if not prop.holds(above):
                return below, above
    return None


def test_reliability_safety_refuted_by_search():
    found = search(
        Reliability(receivers={0, 1, 2}),
        Safety(),
        lambda rng: random_reliable_execution(rng, [0, 1, 2], rng.randint(1, 4)),
    )
    assert found is not None


def test_priority_asynchrony_refuted_by_search():
    found = search(
        PrioritizedDelivery(master=0),
        Asynchrony(),
        lambda rng: random_master_first_execution(rng, [0, 1, 2], 0, rng.randint(1, 4)),
    )
    assert found is not None


def test_amoeba_send_enabled_refuted_by_search():
    found = search(
        Amoeba(),
        SendEnabled(),
        lambda rng: random_amoeba_execution(rng, [0, 1], rng.randint(1, 8)),
    )
    assert found is not None


def test_amoeba_delayable_refuted_by_search():
    found = search(
        Amoeba(),
        Delayable(),
        lambda rng: random_amoeba_execution(rng, [0, 1], rng.randint(2, 10)),
    )
    assert found is not None


def test_vs_memoryless_refuted_by_search():
    found = search(
        VirtualSynchrony(),
        Memoryless(),
        lambda rng: random_vs_execution(rng, [0, 1, 2], rng.randint(2, 3), 2),
    )
    assert found is not None
    below, above = found
    assert VirtualSynchrony().holds(below)
    assert not VirtualSynchrony().holds(above)


def test_noreplay_composable_refuted_by_search():
    rng = random.Random(5)
    prop = NoReplay()
    for __ in range(300):
        # Two single-delivery traces with colliding bodies, disjoint ids
        # (with period-2 bodies, messages 0 and 2 share body "b0").
        messages = make_messages([0, 1], 3, distinct_bodies=False)
        m1, m2 = messages[0], messages[2]
        receiver = rng.choice([0, 1, 2])
        t1 = Trace([DeliverEvent(receiver, m1)])
        t2 = Trace([DeliverEvent(receiver, m2)])
        assert prop.holds(t1) and prop.holds(t2)
        if Composable.composable_pair(t1, t2):
            combined = Composable.compose(t1, t2)
            if not prop.holds(combined):
                return
    raise AssertionError("no composable counterexample found")
