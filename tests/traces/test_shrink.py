"""Unit tests for counterexample shrinking."""

import pytest

from repro.errors import VerificationError
from repro.stack.message import Message
from repro.traces.meta import Asynchrony, Composable, Safety, SendEnabled
from repro.traces.properties import Amoeba, PrioritizedDelivery, Reliability
from repro.traces.verify import (
    check_preservation,
    enumerate_traces,
    shrink_counterexample,
)


def messages(n):
    return [
        Message(sender=i % 2, mid=(i % 2, i), body=f"b{i}", body_size=1)
        for i in range(n)
    ]


def find_counterexample(prop, meta, universe):
    verdict = check_preservation(prop, meta, universe)
    assert not verdict.preserved
    return verdict.counterexample


def test_shrinks_reliability_safety_to_minimal():
    prop = Reliability(receivers={0, 1})
    universe = list(enumerate_traces(messages(2), [0, 1], 5))
    ce = find_counterexample(prop, Safety(), universe)
    small = shrink_counterexample(prop, Safety(), ce)
    # The minimal witness is S D D (a reliable trace whose prefix drops
    # a needed delivery) — 3 events.
    assert len(small.below) <= 3
    assert prop.holds(small.below)
    assert not prop.holds(small.above)


def test_shrinks_priority_asynchrony():
    prop = PrioritizedDelivery(master=0)
    universe = list(enumerate_traces(messages(2), [0, 1], 4))
    ce = find_counterexample(prop, Asynchrony(), universe)
    small = shrink_counterexample(prop, Asynchrony(), ce)
    assert len(small.below) <= 2  # D(master,m) D(other,m)
    assert prop.holds(small.below)


def test_shrinks_amoeba_send_enabled():
    prop = Amoeba()
    same_sender = [
        Message(sender=0, mid=(0, i), body=f"b{i}", body_size=1)
        for i in range(2)
    ]
    universe = list(enumerate_traces(same_sender, [0], 3))
    ce = find_counterexample(prop, SendEnabled(), universe)
    small = shrink_counterexample(prop, SendEnabled(), ce)
    assert len(small.below) == 1  # a single outstanding Send


def test_shrink_never_grows():
    prop = Reliability(receivers={0, 1})
    universe = list(enumerate_traces(messages(2), [0, 1], 5))
    ce = find_counterexample(prop, Safety(), universe)
    small = shrink_counterexample(prop, Safety(), ce)
    assert len(small.below) <= len(ce.below)


def test_composable_rejected():
    prop = Reliability(receivers={0, 1})
    universe = list(enumerate_traces(messages(1), [0, 1], 3))
    ce = find_counterexample(prop, Safety(), universe)
    with pytest.raises(VerificationError):
        shrink_counterexample(prop, Composable(), ce)
