"""AsyncioRuntime: real-clock semantics, driving, and teardown.

Wall-clock assertions use generous bounds — CI machines stall — and the
runs are kept to tens of milliseconds so the suite stays fast.
"""

import asyncio

import pytest

from repro.errors import SimulationError
from repro.runtime import AsyncioRuntime, Runtime
from repro.runtime.api import TimerHandle


@pytest.fixture
def runtime():
    rt = AsyncioRuntime()
    yield rt
    rt.close()


def test_is_a_runtime(runtime):
    assert isinstance(runtime, Runtime)
    assert runtime.name == "asyncio"


def test_clock_starts_near_zero_and_advances(runtime):
    assert 0.0 <= runtime.now < 1.0
    before = runtime.now
    runtime.run_for(0.02)
    assert runtime.now >= before + 0.02


def test_timer_fires_at_or_after_deadline(runtime):
    fired = []
    runtime.schedule(0.01, lambda: fired.append(runtime.now))
    runtime.run_for(0.1)
    assert len(fired) == 1
    assert fired[0] >= 0.01


def test_negative_delay_rejected(runtime):
    with pytest.raises(SimulationError, match="past"):
        runtime.schedule(-0.1, lambda: None)


def test_schedule_at_clamps_past_deadlines_to_now(runtime):
    fired = []
    runtime.run_for(0.01)
    runtime.schedule_at(0.0, lambda: fired.append(True))  # already past
    runtime.run_for(0.05)
    assert fired == [True]


def test_cancel_prevents_firing(runtime):
    fired = []
    handle = runtime.schedule(0.01, lambda: fired.append(True))
    assert isinstance(handle, TimerHandle)
    handle.cancel()
    assert handle.cancelled
    runtime.run_for(0.05)
    assert fired == []


def test_spawn_callable_and_coroutine(runtime):
    log = []

    async def coro():
        log.append("coro")

    runtime.spawn(lambda: log.append("callable"))
    runtime.spawn(coro())
    runtime.run_for(0.05)
    assert sorted(log) == ["callable", "coro"]


def test_spawn_rejects_non_callables(runtime):
    with pytest.raises(SimulationError, match="callable or coroutine"):
        runtime.spawn(42)


def test_run_task_returns_result(runtime):
    async def answer():
        await asyncio.sleep(0)
        return 17

    assert runtime.run_task(answer()) == 17


def test_run_until_advances_to_deadline(runtime):
    target = runtime.now + 0.03
    runtime.run_until(target)
    assert runtime.now >= target


def test_stop_from_a_callback_interrupts_run_for(runtime):
    runtime.schedule(0.01, runtime.stop)
    runtime.run_for(30.0)  # must return long before 30s (stop watcher)
    assert runtime.now < 5.0


def test_close_runs_closers_and_rejects_further_driving():
    runtime = AsyncioRuntime()
    closed = []
    runtime.on_close(lambda: closed.append("a"))
    runtime.on_close(lambda: closed.append("b"))
    runtime.close()
    assert closed == ["b", "a"]  # reverse registration order
    runtime.close()  # idempotent
    assert closed == ["b", "a"]
    with pytest.raises(SimulationError, match="closed"):
        runtime.run_for(0.01)
