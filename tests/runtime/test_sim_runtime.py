"""SimRuntime: interface conformance and engine delegation."""

import pytest

from repro.errors import SimulationError
from repro.runtime import Runtime, Scheduler, SimRuntime, make_runtime
from repro.runtime.api import Clock, TimerHandle
from repro.sim.engine import Simulator


def test_is_a_runtime():
    runtime = SimRuntime()
    assert isinstance(runtime, Runtime)
    assert isinstance(runtime, Scheduler)
    assert isinstance(runtime, Clock)
    assert runtime.name == "sim"


def test_wraps_a_caller_supplied_engine():
    sim = Simulator()
    runtime = SimRuntime(sim)
    assert runtime.sim is sim
    sim.schedule(0.5, lambda: None)
    runtime.run_until(1.0)
    assert sim.now == 1.0
    assert runtime.now == 1.0


def test_schedule_returns_cancellable_timer_handle():
    runtime = SimRuntime()
    fired = []
    handle = runtime.schedule(0.1, lambda: fired.append("a"))
    assert isinstance(handle, TimerHandle)
    handle.cancel()
    assert handle.cancelled
    runtime.run_for(1.0)
    assert fired == []


def test_schedule_at_matches_engine_semantics():
    runtime = SimRuntime()
    fired = []
    runtime.schedule_at(0.25, lambda: fired.append(runtime.now))
    runtime.run_for(1.0)
    assert fired == [0.25]


def test_spawn_runs_callable_at_current_instant():
    runtime = SimRuntime()
    fired = []
    runtime.schedule(1.0, lambda: runtime.spawn(lambda: fired.append(runtime.now)))
    runtime.run_for(2.0)
    assert fired == [1.0]


def test_spawn_rejects_coroutines():
    runtime = SimRuntime()

    async def coro():  # pragma: no cover - never awaited
        pass

    task = coro()
    with pytest.raises(SimulationError, match="AsyncioRuntime"):
        runtime.spawn(task)
    task.close()


def test_engine_passthroughs():
    runtime = SimRuntime()
    for i in range(4):
        runtime.schedule(0.1 * (i + 1), lambda: None)
    assert runtime.pending() == 4
    assert runtime.step() is True
    assert runtime.events_processed == 1
    assert runtime.run() == 3


def test_run_forwards_runaway_guard():
    runtime = SimRuntime()

    def rearm():
        runtime.schedule(0.1, rearm)

    rearm()
    with pytest.raises(SimulationError, match="runaway"):
        runtime.run(until=1.0)


def test_delegation_is_bit_for_bit_identical():
    # The same event program through the boundary and against the bare
    # engine must produce the identical (time, label) firing sequence.
    def program(schedule, now):
        trace = []
        schedule(0.2, lambda: trace.append((now(), "b")))
        schedule(0.1, lambda: trace.append((now(), "a")))
        schedule(0.1, lambda: trace.append((now(), "a2")))  # FIFO tie
        schedule(0.3, lambda: schedule(0.1, lambda: trace.append((now(), "c"))))
        return trace

    sim = Simulator()
    bare = program(sim.schedule, lambda: sim.now)
    sim.run()

    runtime = SimRuntime()
    wrapped = program(runtime.schedule, lambda: runtime.now)
    runtime.run()

    assert bare == wrapped


def test_make_runtime_factory():
    assert isinstance(make_runtime("sim"), SimRuntime)
    with pytest.raises(SimulationError, match="unknown runtime"):
        make_runtime("quantum")


class TestRuntimeRearm:
    """rearm() through the runtime boundary (fused on SimRuntime)."""

    def test_rearm_retimes_and_rebinds(self):
        from repro.runtime import SimRuntime

        runtime = SimRuntime()
        fired = []
        handle = runtime.schedule(5.0, lambda: fired.append("a"))
        handle = runtime.rearm(handle, 1.0, lambda: fired.append("a"))
        runtime.run()
        assert fired == ["a"]
        assert runtime.now == 1.0

    def test_rearm_swaps_the_callback(self):
        from repro.runtime import SimRuntime

        runtime = SimRuntime()
        fired = []
        handle = runtime.schedule(5.0, lambda: fired.append("old"))
        runtime.rearm(handle, 1.0, lambda: fired.append("new"))
        runtime.run()
        assert fired == ["new"]

    def test_rearm_of_fired_handle_falls_back_to_schedule(self):
        from repro.runtime import SimRuntime

        runtime = SimRuntime()
        fired = []
        handle = runtime.schedule(1.0, lambda: fired.append("first"))
        runtime.run()
        # The fused engine path would raise on a fired handle; the
        # runtime surface keeps cancel+schedule semantics instead.
        runtime.rearm(handle, 1.0, lambda: fired.append("second"))
        runtime.run()
        assert fired == ["first", "second"]
        assert runtime.now == 2.0

    def test_rearm_matches_cancel_plus_schedule_ordering(self):
        from repro.runtime import SimRuntime

        def run(use_rearm):
            runtime = SimRuntime()
            fired = []
            for name in "ab":
                runtime.schedule(1.0, lambda name=name: fired.append(name))
            mover = runtime.schedule(9.0, lambda: fired.append("m"))
            if use_rearm:
                runtime.rearm(mover, 1.0, lambda: fired.append("m"))
            else:
                mover.cancel()
                runtime.schedule(1.0, lambda: fired.append("m"))
            runtime.run()
            return fired

        assert run(True) == run(False) == ["a", "b", "m"]
