"""SignalTracker unit tests: each signal over a controlled fake clock."""

import pytest

from repro.errors import ScenarioError
from repro.scenarios.signals import SignalTracker


class FakeClock:
    def __init__(self):
        self.now = 0.0


class FakeSender:
    def __init__(self, active):
        self.active = active


class FakeStats:
    def __init__(self):
        self.counts = {"sends": 0, "drops": 0}

    def get(self, name):
        return self.counts.get(name, 0)


class FakeNetwork:
    def __init__(self):
        self.stats = FakeStats()


def test_rejects_nonpositive_window():
    with pytest.raises(ScenarioError, match="window must be positive"):
        SignalTracker(FakeClock(), 0.0)


def test_unknown_signal_raises():
    tracker = SignalTracker(FakeClock(), 1.0)
    with pytest.raises(ScenarioError, match="unknown signal"):
        tracker.metric("vibes")


def test_active_senders_counts_running_generators():
    senders = [FakeSender(True), FakeSender(False), FakeSender(True)]
    tracker = SignalTracker(FakeClock(), 1.0, senders=senders)
    assert tracker.value("active_senders") == 2.0
    senders[1].active = True
    assert tracker.value("active_senders") == 3.0


def test_offered_rate_is_windowed():
    clock = FakeClock()
    tracker = SignalTracker(clock, window=2.0)
    for t in (0.0, 0.5, 1.0, 1.5):
        clock.now = t
        tracker.record_cast()
    clock.now = 2.0
    assert tracker.value("offered_rate") == pytest.approx(4 / 2.0)
    # Advance past the window: the early casts age out.
    clock.now = 3.2
    assert tracker.value("offered_rate") == pytest.approx(1 / 2.0)
    clock.now = 10.0
    assert tracker.value("offered_rate") == 0.0


def test_delivery_latency_is_windowed_mean_in_ms():
    clock = FakeClock()
    tracker = SignalTracker(clock, window=1.0)
    assert tracker.value("delivery_latency_ms") == 0.0  # no samples yet
    clock.now = 0.5
    tracker.record_delivery(0.010)
    tracker.record_delivery(0.030)
    assert tracker.value("delivery_latency_ms") == pytest.approx(20.0)
    assert tracker.value("delivered_rate") == pytest.approx(2 / 1.0)
    # Old samples fall out of the mean.
    clock.now = 2.0
    tracker.record_delivery(0.100)
    assert tracker.value("delivery_latency_ms") == pytest.approx(100.0)


def test_loss_ratio_requires_network():
    tracker = SignalTracker(FakeClock(), 1.0)
    with pytest.raises(ScenarioError, match="needs a simulated network"):
        tracker.value("loss_ratio")


def test_loss_ratio_reads_counters_differentially():
    network = FakeNetwork()
    tracker = SignalTracker(FakeClock(), 1.0, network=network)
    assert tracker.value("loss_ratio") == 0.0

    network.stats.counts.update(sends=100, drops=25)
    assert tracker.value("loss_ratio") == pytest.approx(0.25)

    # A clean stretch pulls the ratio straight down (not a run average).
    network.stats.counts.update(sends=200, drops=25)
    assert tracker.value("loss_ratio") == pytest.approx(0.0)

    # Idle (no new sends): the last ratio is retained.
    network.stats.counts.update(sends=200, drops=25)
    assert tracker.value("loss_ratio") == pytest.approx(0.0)
    network.stats.counts.update(sends=250, drops=50)
    assert tracker.value("loss_ratio") == pytest.approx(0.5)
