"""End-to-end scenario runs: the catalog ships, scores, and replays.

These are the tier-1 teeth behind the ``repro scenario`` CI sweep: the
shipped catalog stays complete and loadable, a stability scenario and a
drift scenario both actually pass on the sim runtime, verdicts are
deterministic (inline and through the sweeprunner's process pool), and
at least one clean-net scenario passes over real asyncio/UDP loopback.
"""

import pytest

from repro.errors import ScenarioError
from repro.scenarios import load_catalog, run_scenario
from repro.scenarios.runner import run_scenario_cell, scenario_cells
from repro.workloads.parallel import run_cells

REQUIRED = {
    "baseline_steady",
    "burst_loss",
    "congestion_collapse",
    "diurnal_load",
    "escalating_loss",
    "flash_crowd",
    "high_latency",
    "intermittent_connectivity",
    "mobile_handoff_jitter",
}


@pytest.fixture(scope="module")
def catalog():
    return load_catalog()


def test_catalog_is_complete(catalog):
    assert len(catalog) >= 8
    assert REQUIRED <= set(catalog)
    assert all("sim" in spec.runtimes for spec in catalog.values())
    # The testbed's asyncio bridge needs at least one clean-net scenario.
    assert any("asyncio" in spec.runtimes for spec in catalog.values())


def test_stability_scenario_holds_ground(catalog):
    verdict = run_scenario(catalog["baseline_steady"])
    assert verdict.ok, verdict.violations
    assert verdict.switches_completed == 0
    assert verdict.decisions == []
    assert set(verdict.final_protocols.values()) == {"sequencer"}
    assert verdict.delivery_ratio >= 0.95


def test_drift_scenario_switches_once_and_quickly(catalog):
    spec = catalog["congestion_collapse"]
    verdict = run_scenario(spec)
    assert verdict.ok, verdict.violations
    assert verdict.switches_completed == 1
    assert set(verdict.final_protocols.values()) == {"tokenring"}
    assert verdict.time_to_switch is not None
    assert 0 <= verdict.time_to_switch <= spec.expect.max_time_to_switch
    assert verdict.switch_duration_ms > 0
    # The verdict dict is the wire format check_scenarios.py validates.
    payload = verdict.to_dict()
    assert payload["scenario"] == "congestion_collapse"
    assert payload["ok"] is True
    assert payload["violations"] == []


def test_verdicts_deterministic_inline_and_pooled(catalog):
    names = ["baseline_steady", "flash_crowd"]
    inline = [run_scenario(catalog[name]).to_dict() for name in names]
    cells = scenario_cells(names, "sim")
    serial = [v.to_dict() for v in run_cells(cells, run_scenario_cell, 1)]
    # workers=4 forces a real process pool even on a 1-core box
    # (run_cells clamps to the cell count, not the CPU count).
    pooled = [v.to_dict() for v in run_cells(cells, run_scenario_cell, 4)]
    assert inline == serial
    assert inline == pooled


def test_undeclared_runtime_is_rejected(catalog):
    with pytest.raises(ScenarioError, match="declares runtimes"):
        run_scenario(catalog["baseline_steady"], "asyncio")


def test_flash_crowd_passes_on_asyncio(catalog):
    # The acceptance bar: at least one catalog scenario passes on the
    # real asyncio/UDP runtime.  Distinct port base so parallel test
    # runs don't collide with the runtime-parity suite.
    verdict = run_scenario(
        catalog["flash_crowd"], "asyncio", base_port=47810
    )
    assert verdict.ok, verdict.violations
    assert verdict.runtime == "asyncio"
    assert verdict.switches_completed >= 1
    assert set(verdict.final_protocols.values()) == {"tokenring"}
