"""Spec validation: every malformed catalog entry must fail loudly at
load time, with a message naming the offending field."""

import json

import pytest

from repro.errors import ScenarioError
from repro.scenarios import ScenarioSpec, load_catalog, load_scenario


def base_spec():
    return {
        "name": "unit_test",
        "summary": "unit-test scenario",
        "seed": 7,
        "group": {"members": 4, "initial": "sequencer",
                  "token_interval": 0.002},
        "oracle": {
            "signal": "active_senders",
            "high": 3.0,
            "low": 1.5,
            "low_protocol": "sequencer",
            "high_protocol": "tokenring",
            "dwell": 0.5,
            "poll": 0.1,
            "window": 0.5,
        },
        "phases": [
            {"name": "calm", "duration": 1.0,
             "workload": {"senders": 1, "rate": 20.0}},
            {"name": "busy", "duration": 1.0,
             "workload": {"senders": 4, "rate": 20.0},
             "net": {"loss": 0.05}},
        ],
        "expect": {
            "protocol": "tokenring",
            "max_switches": 1,
            "drift_phase": "busy",
            "max_time_to_switch": 3.0,
            "min_delivery_ratio": 0.8,
        },
        "settle": {"windows": 10, "window": 0.5},
    }


def test_accepts_valid_spec():
    spec = ScenarioSpec.from_dict(base_spec())
    assert spec.name == "unit_test"
    assert spec.runtimes == ("sim",)  # the default
    assert spec.duration == pytest.approx(2.0)
    assert spec.phase_start("busy") == pytest.approx(1.0)
    assert spec.oracle.low == pytest.approx(1.5)
    assert spec.expect.drift_phase == "busy"


def test_defaults_fill_in():
    data = base_spec()
    del data["group"], data["settle"], data["seed"]
    data["expect"].pop("min_delivery_ratio")
    spec = ScenarioSpec.from_dict(data)
    assert spec.group.members == 6
    assert spec.settle.windows == 20
    assert spec.seed == 42
    assert spec.expect.min_delivery_ratio == pytest.approx(0.9)


def mutated(**overrides):
    data = base_spec()
    data.update(overrides)
    return data


@pytest.mark.parametrize(
    "mutate, message",
    [
        (lambda d: d.pop("name"), "missing required field 'name'"),
        (lambda d: d.pop("summary"), "missing required field 'summary'"),
        (lambda d: d.pop("oracle"), "missing required field 'oracle'"),
        (lambda d: d.pop("phases"), "missing required field 'phases'"),
        (lambda d: d.pop("expect"), "missing required field 'expect'"),
        (lambda d: d.update(phases=[]), "non-empty array"),
        (lambda d: d.update(runtimes=["sim", "bare_metal"]),
         "non-empty subset"),
        (lambda d: d.update(seed="forty-two"), "seed must be an int"),
        (lambda d: d.update(extra_field=1), "unknown field"),
        (lambda d: d["group"].update(members=1), "members must be an int >= 2"),
        (lambda d: d["group"].update(initial="multicast"),
         "initial must be one of"),
        (lambda d: d["oracle"].update(signal="vibes"), "unknown signal"),
        (lambda d: d["oracle"].update(low=5.0), "band inverted"),
        (lambda d: d["oracle"].update(low_protocol="tokenring"),
         "low and high protocol are the same"),
        (lambda d: d["oracle"].update(high="lots"), "expected a number"),
        (lambda d: d["phases"][0].update(name=""), "non-empty string"),
        (lambda d: d["phases"][1].update(name="calm"),
         "duplicate phase names"),
        (lambda d: d["phases"][0]["workload"].update(senders=9),
         r"senders: must be an int in \[1, 4\]"),
        (lambda d: d["phases"][0].update(duration=0), "must be >="),
        (lambda d: d["phases"][1]["net"].update(loss=1.0), "must be < 1.0"),
        (lambda d: d["expect"].update(protocol="udp"),
         "protocol: must be one of"),
        (lambda d: d["expect"].update(max_switches=-1),
         "must be an int >= 0"),
        (lambda d: d["expect"].update(drift_phase="warmup"),
         "names no phase"),
        (lambda d: d["expect"].pop("drift_phase"),
         "needs a drift_phase anchor"),
        (lambda d: d["expect"].update(min_delivery_ratio=1.5),
         "must be <= 1.0"),
        (lambda d: d["settle"].update(windows=0), "must be an int >= 1"),
    ],
)
def test_rejects_malformed_spec(mutate, message):
    data = base_spec()
    mutate(data)
    with pytest.raises(ScenarioError, match=message):
        ScenarioSpec.from_dict(data)


def test_rejects_expectation_outside_oracle_band():
    data = base_spec()
    # Oracle can only ever pick sequencer or tokenring; expecting a
    # protocol the band cannot reach is a contradiction.
    data["group"]["initial"] = "tokenring"
    data["oracle"]["low_protocol"] = "tokenring"
    data["oracle"]["high_protocol"] = "sequencer"
    data["expect"]["protocol"] = "sequencer"
    ScenarioSpec.from_dict(data)  # still a valid band, both sides covered


def test_rejects_asyncio_with_dirty_net():
    data = mutated(runtimes=["sim", "asyncio"])
    with pytest.raises(ScenarioError, match="cannot inject simulated"):
        ScenarioSpec.from_dict(data)


def test_rejects_asyncio_with_loss_ratio_signal():
    data = mutated(runtimes=["asyncio"])
    for phase in data["phases"]:
        phase.pop("net", None)
    data["oracle"]["signal"] = "loss_ratio"
    with pytest.raises(ScenarioError, match="loss_ratio reads the simulated"):
        ScenarioSpec.from_dict(data)


def test_load_scenario_rejects_name_stem_mismatch(tmp_path):
    path = tmp_path / "wrong_stem.json"
    path.write_text(json.dumps(base_spec()))
    with pytest.raises(ScenarioError, match="keep them equal"):
        load_scenario(str(path))


def test_load_scenario_rejects_bad_json(tmp_path):
    path = tmp_path / "unit_test.json"
    path.write_text("{not json")
    with pytest.raises(ScenarioError, match="not valid JSON"):
        load_scenario(str(path))


def test_load_catalog_rejects_empty_directory(tmp_path):
    with pytest.raises(ScenarioError, match="no scenario files"):
        load_catalog(str(tmp_path))


def test_load_catalog_custom_directory(tmp_path):
    path = tmp_path / "unit_test.json"
    path.write_text(json.dumps(base_spec()))
    catalog = load_catalog(str(tmp_path))
    assert list(catalog) == ["unit_test"]
