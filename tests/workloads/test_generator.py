"""Unit tests for workload generators."""

import pytest

from helpers import ptp_group
from repro.errors import ReproError
from repro.protocols.amoeba import AmoebaLayer
from repro.sim.rng import RandomStreams
from repro.workloads.generator import Payload, PoissonSender, UniformSender


def test_uniform_sender_rate():
    sim, stacks, log = ptp_group(2, lambda r: [])
    sender = UniformSender(sim, stacks[0], interval=0.1)
    sender.start()
    sim.run_until(1.05)
    assert sender.sent == 10


def test_poisson_sender_approximate_rate():
    sim, stacks, log = ptp_group(2, lambda r: [])
    rng = RandomStreams(1).stream("w")
    sender = PoissonSender(sim, stacks[0], rate=100.0, rng=rng)
    sender.start()
    sim.run_until(5.0)
    assert 350 <= sender.sent <= 650  # ~500 expected


def test_payload_carries_timestamp():
    sim, stacks, log = ptp_group(2, lambda r: [])
    sender = UniformSender(sim, stacks[0], interval=0.25)
    sender.start()
    sim.run_until(0.6)
    payloads = [b for b in log.bodies(1) if isinstance(b, Payload)]
    assert [p.sent_at for p in payloads] == pytest.approx([0.25, 0.5])
    assert all(p.origin == 0 for p in payloads)
    assert [p.seq for p in payloads] == [0, 1]


def test_start_stop_window():
    sim, stacks, log = ptp_group(2, lambda r: [])
    sender = UniformSender(sim, stacks[0], interval=0.1, start=0.5, stop=1.0)
    sender.start()
    sim.run_until(2.0)
    assert 4 <= sender.sent <= 5
    payloads = [b for b in log.bodies(1) if isinstance(b, Payload)]
    assert all(0.5 <= p.sent_at <= 1.0 for p in payloads)


def test_stop_method_halts():
    sim, stacks, log = ptp_group(2, lambda r: [])
    sender = UniformSender(sim, stacks[0], interval=0.1)
    sender.start()
    sim.run_until(0.35)
    sender.stop()
    sim.run_until(2.0)
    assert sender.sent == 3


def test_respect_backpressure_skips_when_blocked():
    sim, stacks, log = ptp_group(2, lambda r: [AmoebaLayer()])
    # Slow the loopback so the first message stays outstanding a while.
    sender = UniformSender(
        sim, stacks[0], interval=0.00001, respect_backpressure=True
    )
    sender.start()
    sim.run_until(0.0001)
    assert sender.skipped > 0


def test_rate_validation():
    sim, stacks, log = ptp_group(2, lambda r: [])
    rng = RandomStreams(1).stream("w")
    with pytest.raises(ReproError):
        PoissonSender(sim, stacks[0], rate=0, rng=rng)
    with pytest.raises(ReproError):
        UniformSender(sim, stacks[0], interval=0)


def test_double_start_is_idempotent():
    sim, stacks, log = ptp_group(2, lambda r: [])
    sender = UniformSender(sim, stacks[0], interval=0.1)
    sender.start()
    sender.start()
    sim.run_until(0.55)
    assert sender.sent == 5
