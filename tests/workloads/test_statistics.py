"""Unit tests for cross-seed Figure 2 statistics."""

import pytest

from repro.errors import ReproError
from repro.workloads.experiment import (
    Figure2Config,
    run_point_statistics,
)


def small_config():
    return Figure2Config(group_size=4, duration=0.8, warmup=0.2, seed=5)


def test_statistics_fields():
    stats = run_point_statistics("token", 2, small_config(), repeats=3)
    assert stats.protocol == "token"
    assert stats.active_senders == 2
    assert stats.repeats == 3
    assert stats.min_ms <= stats.mean_ms <= stats.max_ms
    assert stats.std_ms >= 0


def test_seeds_actually_vary():
    stats = run_point_statistics("sequencer", 2, small_config(), repeats=3)
    assert stats.std_ms > 0  # different seeds, different workloads
    assert stats.max_ms > stats.min_ms


def test_single_repeat_has_zero_std():
    stats = run_point_statistics("token", 1, small_config(), repeats=1)
    assert stats.std_ms == 0.0
    assert stats.min_ms == stats.max_ms == stats.mean_ms


def test_repeats_validated():
    with pytest.raises(ReproError):
        run_point_statistics("token", 1, small_config(), repeats=0)


def test_crossover_ordering_is_seed_robust():
    """The qualitative Figure 2 claim survives seed choice: sequencer
    beats token at 1 sender across every seed tried."""
    config = Figure2Config(group_size=6, duration=1.2, warmup=0.3, seed=7)
    seq = run_point_statistics("sequencer", 1, config, repeats=4)
    tok = run_point_statistics("token", 1, config, repeats=4)
    assert seq.max_ms < tok.min_ms
