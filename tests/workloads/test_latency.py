"""Unit tests for the latency probe."""

import pytest

from helpers import ptp_group
from repro.net.ptp import LatencyMatrix
from repro.workloads.generator import UniformSender
from repro.workloads.latency import LatencyProbe


def test_latency_matches_network():
    matrix = LatencyMatrix(2, base_latency=5e-3)
    sim, stacks, log = ptp_group(2, lambda r: [], latency=matrix)
    probe = LatencyProbe(sim)
    probe.attach(stacks[1])
    UniformSender(sim, stacks[0], interval=0.1).start()
    sim.run_until(1.0)
    assert probe.latency.mean == pytest.approx(5e-3)
    assert probe.mean_ms == pytest.approx(5.0)


def test_warmup_excludes_early_samples():
    sim, stacks, log = ptp_group(2, lambda r: [])
    probe = LatencyProbe(sim, warmup=0.5)
    probe.attach(stacks[1])
    UniformSender(sim, stacks[0], interval=0.1).start()
    sim.run_until(1.05)
    assert probe.ignored == 4  # sent at 0.1..0.4
    assert probe.latency.count == 6


def test_non_payload_bodies_ignored():
    sim, stacks, log = ptp_group(2, lambda r: [])
    probe = LatencyProbe(sim)
    probe.attach(stacks[1])
    stacks[0].cast("not-a-payload", 16)
    sim.run()
    assert probe.latency.count == 0


def test_max_gap_detection():
    sim, stacks, log = ptp_group(2, lambda r: [])
    probe = LatencyProbe(sim)
    probe.attach_all(stacks)
    sender = UniformSender(sim, stacks[0], interval=0.05, stop=0.2)
    sender.start()
    sim.run_until(0.5)
    late = UniformSender(sim, stacks[0], interval=0.05, start=0.9)
    late.start()
    sim.run_until(1.2)
    # The gap spans roughly 0.15 -> 0.95.
    assert probe.max_gap == pytest.approx(0.8, abs=0.1)
    assert probe.max_gap_process in (0, 1)


def test_quantiles_exposed():
    sim, stacks, log = ptp_group(2, lambda r: [])
    probe = LatencyProbe(sim)
    probe.attach(stacks[1])
    UniformSender(sim, stacks[0], interval=0.01).start()
    sim.run_until(0.5)
    assert probe.quantile_ms(0.9) >= probe.median_ms
