"""Unit tests for the §7 experiment runners (scaled-down configs)."""

import pytest

from repro.errors import ReproError
from repro.workloads.experiment import (
    Figure2Config,
    LatencyResult,
    find_crossover,
    run_figure2_sweep,
    run_oscillation_experiment,
    run_switch_overhead_experiment,
    run_total_order_experiment,
)


def small_config():
    return Figure2Config(group_size=5, duration=1.0, warmup=0.25, seed=3)


def result(protocol, k, mean):
    return LatencyResult(protocol, k, mean, mean, mean, 100)


class TestRunSingle:
    def test_sequencer_point(self):
        res = run_total_order_experiment("sequencer", 2, small_config())
        assert res.protocol == "sequencer"
        assert res.samples > 50
        assert 0 < res.mean_ms < 100

    def test_token_point(self):
        res = run_total_order_experiment("token", 2, small_config())
        assert res.mean_ms > 0

    def test_hybrid_point(self):
        res = run_total_order_experiment("hybrid", 2, small_config())
        assert res.mean_ms > 0

    def test_token_slower_than_sequencer_at_low_load(self):
        cfg = small_config()
        seq = run_total_order_experiment("sequencer", 1, cfg)
        tok = run_total_order_experiment("token", 1, cfg)
        assert tok.mean_ms > seq.mean_ms

    def test_sender_count_validated(self):
        with pytest.raises(ReproError):
            run_total_order_experiment("sequencer", 0, small_config())
        with pytest.raises(ReproError):
            run_total_order_experiment("sequencer", 99, small_config())

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ReproError):
            run_total_order_experiment("carrier-pigeon", 1, small_config())

    def test_determinism(self):
        a = run_total_order_experiment("sequencer", 2, small_config())
        b = run_total_order_experiment("sequencer", 2, small_config())
        assert a.mean_ms == b.mean_ms


class TestSweepAndCrossover:
    def test_sweep_shape(self):
        results = run_figure2_sweep(
            ("sequencer", "token"), [1, 3], small_config()
        )
        assert set(results) == {"sequencer", "token"}
        assert [r.active_senders for r in results["sequencer"]] == [1, 3]

    def test_find_crossover(self):
        seq = [result("s", 1, 5.0), result("s", 2, 10.0), result("s", 3, 30.0)]
        tok = [result("t", 1, 15.0), result("t", 2, 16.0), result("t", 3, 17.0)]
        assert find_crossover(seq, tok) == (2, 3)

    def test_no_crossover(self):
        seq = [result("s", 1, 5.0), result("s", 2, 6.0)]
        tok = [result("t", 1, 15.0), result("t", 2, 16.0)]
        assert find_crossover(seq, tok) is None


class TestSwitchOverhead:
    def test_switch_happens_and_is_measured(self):
        cfg = Figure2Config(group_size=5, duration=2.5, warmup=0.5, seed=3)
        res = run_switch_overhead_experiment(2, "sequencer->token", cfg)
        assert res.switch_duration_ms > 0
        assert res.max_hiccup_ms > 0
        assert res.sends_blocked == 0

    def test_reverse_direction(self):
        cfg = Figure2Config(group_size=5, duration=2.5, warmup=0.5, seed=3)
        res = run_switch_overhead_experiment(2, "token->sequencer", cfg)
        assert res.direction == "token->sequencer"
        assert res.switch_duration_ms > 0


class TestOscillation:
    def test_aggressive_switches_more_than_hysteresis(self):
        cfg = Figure2Config(group_size=10, duration=1.0, warmup=0.25, seed=3)
        aggressive = run_oscillation_experiment(
            "aggressive", cfg, duration=6.0
        )
        hysteresis = run_oscillation_experiment(
            "hysteresis", cfg, duration=6.0
        )
        assert aggressive.switch_requests > hysteresis.switch_requests

    def test_unknown_policy_rejected(self):
        with pytest.raises(ReproError):
            run_oscillation_experiment("yolo", small_config())
