"""Determinism of the parallel sweep runner.

The whole point of fanning sweep cells across processes is that it must
not change the numbers: every cell is hermetic and seeds purely from
its parameters, so ``workers=N`` must reproduce ``workers=1`` exactly —
down to the bytes of the merged JSON artifact.
"""

import os
import sys

import pytest

from repro.workloads.experiment import Figure2Config, run_figure2_sweep
from repro.workloads.parallel import (
    default_workers,
    figure2_cells,
    run_cells,
    run_figure2_sweep_parallel,
)

BENCH_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks")

TINY = Figure2Config(duration=1.4, seed=7)
PROTOCOLS = ("sequencer", "token")
COUNTS = [1, 2]


def _square(cell):
    return cell["x"] * cell["x"]


def test_run_cells_preserves_definition_order():
    cells = [{"x": x} for x in range(8)]
    assert run_cells(cells, _square, workers=1) == [x * x for x in range(8)]
    assert run_cells(cells, _square, workers=4) == [x * x for x in range(8)]


def test_default_workers_clamps():
    cores = os.cpu_count() or 1
    assert default_workers(None) == cores
    assert default_workers(0) == cores
    assert default_workers(1) == 1
    assert default_workers(10**6) == cores


def test_figure2_cells_match_serial_loop_order():
    cells = figure2_cells(PROTOCOLS, COUNTS, TINY)
    assert [(c["protocol"], c["senders"]) for c in cells] == [
        (p, k) for p in PROTOCOLS for k in COUNTS
    ]


def test_parallel_figure2_matches_serial_exactly():
    serial = run_figure2_sweep(PROTOCOLS, COUNTS, TINY)
    parallel = run_figure2_sweep_parallel(PROTOCOLS, COUNTS, TINY, workers=2)
    assert set(serial) == set(parallel)
    for protocol in PROTOCOLS:
        # LatencyResult is a frozen dataclass: == compares every field.
        assert serial[protocol] == parallel[protocol]


def test_sweeprunner_artifact_byte_identical_across_worker_counts(tmp_path):
    sys.path.insert(0, BENCH_DIR)
    try:
        import sweeprunner
    finally:
        sys.path.remove(BENCH_DIR)

    outs = []
    for workers in (1, 2):
        out = tmp_path / f"sweep-w{workers}.json"
        code = sweeprunner.main([
            "--sweep", "figure2",
            "--protocols", "sequencer",
            "--senders", "1,2",
            "--duration", "1.4",
            "--seed", "7",
            "--workers", str(workers),
            "--out", str(out),
        ])
        assert code == 0
        outs.append(out.read_bytes())
    assert outs[0] == outs[1]
    assert b'"workers"' not in outs[0]  # nothing execution-dependent leaks
