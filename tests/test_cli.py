"""CLI tests (fast paths only; the long sweeps are exercised by the
benchmark harness)."""

import pytest

from repro.cli import build_parser, main


def test_parser_builds():
    parser = build_parser()
    assert parser.prog == "repro"


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as exit_info:
        main(["--version"])
    assert exit_info.value.code == 0
    assert "1.0.0" in capsys.readouterr().out


def test_command_required():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_subcommands_registered():
    parser = build_parser()
    text = parser.format_help()
    for command in ("figure2", "table2", "overhead", "oscillation", "preservation"):
        assert command in text


def test_preservation_command_runs(capsys):
    code = main(["preservation"])
    out = capsys.readouterr().out
    assert code == 0
    assert "9/9 scenarios match" in out
    assert "Virtual Synchrony" in out


def test_figure2_accepts_options():
    parser = build_parser()
    args = parser.parse_args(["figure2", "--duration", "2.0", "--seed", "7", "--hybrid"])
    assert args.duration == 2.0
    assert args.seed == 7
    assert args.hybrid is True


def test_table2_accepts_thorough():
    parser = build_parser()
    args = parser.parse_args(["table2", "--thorough"])
    assert args.thorough is True
