"""CLI tests for the audit command."""

import pytest

from repro.cli import main


def test_audit_lists_properties(capsys):
    code = main(["audit"])
    out = capsys.readouterr().out
    assert code == 0
    for name in ("Total Order", "Amoeba", "No Replay"):
        assert name in out


def test_audit_unknown_property(capsys):
    code = main(["audit", "--property", "Levitation"])
    assert code == 1
    assert "unknown property" in capsys.readouterr().out


def test_audit_refuted_property_shows_counterexample(capsys):
    code = main(["audit", "--property", "Prioritized Delivery"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Asynchrony     REFUTED" in out
    assert "below (holds):" in out
    assert "does not guarantee" in out


def test_audit_all_six_property(capsys):
    code = main(["audit", "--property", "Integrity"])
    out = capsys.readouterr().out
    assert code == 0
    assert "REFUTED" not in out
    assert "preserves it" in out
